"""Mutant-efficacy campaigns: prove the checker stack catches seeded bugs.

A campaign runs every selected mutant (:data:`repro.faults.mutants.MUTANTS`)
under every selected checker and assembles the **efficacy matrix** — the
evidence the ISSUE asks for: each seeded protocol bug is detected by at
least one of

``oracle``
    one round-robin run through :func:`repro.sched.explore
    .run_under_schedule`; detection = any recorded failure (a strict-
    serializability violation, or a watchdog trip when the bug destroys
    progress instead of safety).
``sanitizer``
    the same single run with :class:`~repro.faults.sanitizer.StmSanitizer`
    bound; detection = any sanitizer violation *or* any failure (the
    online checker also sees the run the oracle sees).
``fuzzer``
    a short :func:`repro.sched.fuzz.fuzz_schedules` campaign (no
    shrinking); detection = any failing schedule.

Alongside the mutants, the campaign runs every covered variant *unmutated*
under every checker: the matrix is only ``ok`` when all mutants are caught
**and** all baselines stay clean, so a checker cannot "win" by flagging
everything.

Jobs fan out through :func:`repro.harness.parallel.run_jobs`;
:func:`execute_campaign_job` is the module-level executor that pickles into
worker processes.  The ``inject`` CLI target (``python -m repro.harness
inject``) drives :func:`run_campaign` and writes the JSON matrix.
"""

from repro.faults.mutants import MUTANTS, MutantRuntimeFactory
from repro.harness.parallel import run_jobs

CHECKERS = ("oracle", "sanitizer", "fuzzer")

#: Small geometry shared by every campaign job; individual mutants overlay
#: :attr:`~repro.faults.mutants.Mutant.workload_params` to raise contention
#: where their bug needs collisions to matter.
BASE_PARAMS = dict(
    array_size=64,
    grid=2,
    block=16,
    txs_per_thread=2,
    actions_per_tx=2,
)

#: Watchdog budget of every campaign run.  Clean baseline runs of the
#: BASE_PARAMS geometry finish in a few thousand warp steps; mutants that
#: destroy progress (leaked locks, unsorted acquisition) should trip fast
#: instead of burning the explorer's default two-million-step budget.
MAX_STEPS = 120_000


class CampaignJob:
    """One (mutant-or-baseline, variant, checker) unit of campaign work.

    Plain picklable data — instances cross the process-pool boundary of
    :func:`repro.harness.parallel.run_jobs`.  ``mutant`` is ``None`` for a
    clean-baseline job.
    """

    __slots__ = ("mutant", "variant", "checker", "workload", "params", "seeds")

    def __init__(self, mutant, variant, checker, workload, params, seeds):
        self.mutant = mutant
        self.variant = variant
        self.checker = checker
        self.workload = workload
        self.params = dict(params)
        self.seeds = seeds

    def __repr__(self):
        return "CampaignJob(%s/%s via %s)" % (
            self.mutant or "baseline", self.variant, self.checker,
        )


def execute_campaign_job(job):
    """Run one campaign job; returns a plain result dict, never raises.

    An unexpected exception is reported as ``detected=True`` with
    ``error`` set: on a mutant a crash still counts as "caught", and on a
    baseline it poisons the matrix's ``ok`` so the problem surfaces
    instead of disappearing into a worker process.
    """
    # imported here, not at module top: repro.faults must stay importable
    # without dragging in the whole scheduling/workload stack
    from repro.sched.explore import run_under_schedule
    from repro.sched.fuzz import fuzz_schedules

    factory = MutantRuntimeFactory(job.mutant) if job.mutant else None
    result = {
        "mutant": job.mutant,
        "variant": job.variant,
        "checker": job.checker,
        "detected": False,
        "detail": None,
        "livelock": False,
        "error": None,
    }
    try:
        if job.checker == "fuzzer":
            report = fuzz_schedules(
                job.workload,
                job.params,
                job.variant,
                seeds=job.seeds,
                jobs=1,
                shrink=False,
                gpu_overrides=dict(max_steps=MAX_STEPS),
                runtime_factory=factory,
            )
            result["detected"] = report.found_violation
            if report.failures:
                first = report.failures[0].outcome
                result["detail"] = "%s: %s" % (
                    first.failure, (first.detail or "").splitlines()[0],
                )
                result["livelock"] = first.livelock
        else:
            outcome = run_under_schedule(
                job.workload,
                job.params,
                job.variant,
                policy="rr",
                sanitize=job.checker == "sanitizer",
                gpu_overrides=dict(max_steps=MAX_STEPS),
                runtime_factory=factory,
            )
            if job.checker == "sanitizer":
                result["detected"] = (
                    bool(outcome.violations) or outcome.failure is not None
                )
            else:
                result["detected"] = outcome.failure is not None
            if outcome.failure is not None:
                result["detail"] = "%s: %s" % (
                    outcome.failure, (outcome.detail or "").splitlines()[0],
                )
            elif outcome.violations:
                result["detail"] = "%(check)s: %(detail)s" % outcome.violations[0]
            result["livelock"] = outcome.livelock
    except Exception as exc:  # noqa: BLE001 - worker must never raise
        result["detected"] = True
        result["error"] = "%s: %s" % (type(exc).__name__, exc)
        result["detail"] = result["error"]
    return result


def _campaign_jobs(names, checkers, workload, seeds, include_baselines):
    jobs = []
    covered = []
    for name in names:
        mutant = MUTANTS[name]
        params = dict(BASE_PARAMS)
        params.update(mutant.workload_params)
        for variant in mutant.variants:
            if variant not in covered:
                covered.append(variant)
            for checker in checkers:
                jobs.append(
                    CampaignJob(name, variant, checker, workload, params, seeds)
                )
    if include_baselines:
        for variant in covered:
            for checker in checkers:
                jobs.append(
                    CampaignJob(
                        None, variant, checker, workload, BASE_PARAMS, seeds
                    )
                )
    return jobs


def run_campaign(
    mutants=None,
    checkers=CHECKERS,
    jobs=1,
    workload="ra",
    include_baselines=True,
    seeds=2,
    supervise=None,
    journal=None,
    metrics=None,
    recorder=None,
):
    """Run the mutant x checker campaign; returns the efficacy matrix dict.

    ``mutants`` is an iterable of mutant names (default: the whole corpus);
    ``checkers`` any subset of :data:`CHECKERS`; ``jobs`` the process-pool
    width handed to :func:`~repro.harness.parallel.run_jobs`; ``seeds`` the
    per-fuzzer-job schedule count.  ``supervise``/``journal``/``metrics``
    route the campaign through the supervision layer (timeouts, retries,
    checkpoint/resume; see docs/resilience.md) — ``CampaignJob`` exposes
    its state through ``__slots__``, so journal fingerprints cover every
    field of the job.

    The matrix's ``ok`` is True iff every mutant was detected by at least
    one checker on at least one of its variants **and** every baseline
    stayed clean.
    """
    names = list(mutants) if mutants is not None else sorted(MUTANTS)
    unknown = [n for n in names if n not in MUTANTS]
    if unknown:
        raise ValueError(
            "unknown mutant(s) %s; corpus has: %s"
            % (", ".join(unknown), ", ".join(sorted(MUTANTS)))
        )
    checkers = list(checkers)
    unknown = [c for c in checkers if c not in CHECKERS]
    if unknown:
        raise ValueError(
            "unknown checker(s) %s; available: %s"
            % (", ".join(unknown), ", ".join(CHECKERS))
        )

    specs = _campaign_jobs(names, checkers, workload, seeds, include_baselines)
    results = run_jobs(
        specs, jobs=jobs, executor=execute_campaign_job,
        supervise=supervise, journal=journal, metrics=metrics,
        recorder=recorder,
    )

    matrix = {
        "workload": workload,
        "checkers": checkers,
        "mutants": {},
        "baselines": {},
        "ok": True,
    }
    for name in names:
        mutant = MUTANTS[name]
        matrix["mutants"][name] = {
            "description": mutant.description,
            "variants": list(mutant.variants),
            "expected": list(mutant.expected),
            "results": {},
            "detected": False,
        }
    for spec, result in zip(specs, results):
        if not isinstance(result, dict):
            # a supervised campaign can yield a structured JobResult
            # failure (wall timeout, lost worker) in place of the
            # executor's dict; fold it in as an error cell — detected
            # with error set, so a mutant is not silently "caught" and a
            # baseline poisons ``ok`` instead of hiding the problem
            brief = getattr(result, "brief_error", None)
            detail = brief() if brief is not None else repr(result)
            result = {
                "mutant": spec.mutant,
                "variant": spec.variant,
                "checker": spec.checker,
                "detected": True,
                "detail": detail,
                "livelock": False,
                "error": detail,
            }
        if spec.mutant is None:
            cell = matrix["baselines"].setdefault(spec.variant, {})
            cell[spec.checker] = result
            if result["detected"]:
                matrix["ok"] = False
        else:
            entry = matrix["mutants"][spec.mutant]
            cell = entry["results"].setdefault(spec.variant, {})
            cell[spec.checker] = result
            if result["detected"] and not result["error"]:
                entry["detected"] = True
    # escapees: mutants no checker caught, named explicitly in the JSON
    # artifact so a red campaign says *which* bug got away, not just "NO"
    matrix["escapees"] = [
        name for name in names if not matrix["mutants"][name]["detected"]
    ]
    if matrix["escapees"]:
        matrix["ok"] = False
    return matrix


def render_matrix(matrix):
    """Human-readable table of an efficacy matrix (one mutant per row)."""
    checkers = matrix["checkers"]
    name_width = max(
        [len("mutant")] + [len(name) for name in matrix["mutants"]] or [6]
    )
    header = "%-*s  %s  caught" % (
        name_width, "mutant", "  ".join("%-9s" % c for c in checkers),
    )
    lines = [header, "-" * len(header)]
    for name in sorted(matrix["mutants"]):
        entry = matrix["mutants"][name]
        cells = []
        for checker in checkers:
            hits = [
                result
                for result in (
                    entry["results"].get(v, {}).get(checker)
                    for v in entry["variants"]
                )
                if result is not None and result["detected"]
            ]
            if any(r["error"] for r in hits):
                cells.append("%-9s" % "ERROR")
            elif hits:
                cells.append("%-9s" % "caught")
            else:
                cells.append("%-9s" % "-")
        lines.append(
            "%-*s  %s  %s" % (
                name_width, name, "  ".join(cells),
                "yes" if entry["detected"] else "NO",
            )
        )
    clean = [v for v, cell in sorted(matrix["baselines"].items())
             if not any(r["detected"] for r in cell.values())]
    dirty = [v for v, cell in sorted(matrix["baselines"].items())
             if any(r["detected"] for r in cell.values())]
    if clean:
        lines.append("baselines clean: %s" % ", ".join(clean))
    for variant in dirty:
        flagged = [
            "%s (%s)" % (checker, result["detail"])
            for checker, result in sorted(matrix["baselines"][variant].items())
            if result["detected"]
        ]
        lines.append(
            "baseline FALSE POSITIVE on %s: %s" % (variant, "; ".join(flagged))
        )
    if matrix.get("escapees"):
        lines.append("ESCAPEES: %s" % ", ".join(matrix["escapees"]))
    lines.append("matrix ok: %s" % ("yes" if matrix["ok"] else "NO"))
    return "\n".join(lines)
