"""Fault/sanitizer-instrumented thread context.

:class:`InstrumentedThreadCtx` is the faults analogue of
:class:`~repro.telemetry.ctx.TelemetryThreadCtx`: a drop-in
:class:`~repro.gpu.thread.ThreadCtx` subclass installed through the
``ctx_factory`` seam of :meth:`~repro.gpu.scheduler.Device.launch`.  The
base class keeps its manually-inlined hot paths untouched — the
zero-cost-when-disabled guarantee — while this subclass routes every
globally-visible operation past the armed :class:`~repro.faults.plan
.FaultInjector` and/or the online :class:`~repro.faults.sanitizer
.StmSanitizer`.

The wrappers charge exactly the costs the base class charges (same
``_account`` calls, same latencies), so an armed run whose plan never
fires — and any sanitized run — produces bit-identical simulated cycles;
the cost-neutrality test in ``tests/faults`` pins that.
"""

from repro.faults.plan import DROPPED
from repro.gpu.events import OpKind, Phase
from repro.gpu.thread import ThreadCtx


class InstrumentedThreadCtx(ThreadCtx):
    """ThreadCtx whose global operations consult a fault injector and/or
    an STM sanitizer.  Either collaborator may be None."""

    __slots__ = ("_injector", "_sanitizer")

    def __init__(self, tid, lane_id, warp, block, mem, config, injector, sanitizer):
        ThreadCtx.__init__(self, tid, lane_id, warp, block, mem, config)
        self._injector = injector
        self._sanitizer = sanitizer

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def gread(self, addr, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.READ, addr, phase, self._mem_latency)
        value = self._words[addr]
        injector = self._injector
        if injector is not None:
            value = injector.filter_read(self.tid, addr, value)
        return value

    def gread_l2(self, addr, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.L2_READ, addr, phase, self._l2_read_latency)
        value = self._words[addr]
        injector = self._injector
        if injector is not None:
            value = injector.filter_read(self.tid, addr, value)
        return value

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def gwrite(self, addr, value, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.WRITE, addr, phase, self._mem_latency)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_write(self.tid, addr, value, phase)
        injector = self._injector
        if injector is not None:
            injector.now = self.cycles_total
            value = injector.filter_write(self.tid, addr, value, self._words[addr])
            if value is DROPPED:
                return
        self._words[addr] = value

    # ------------------------------------------------------------------
    # Atomics
    # ------------------------------------------------------------------
    def atomic_cas(self, addr, expected, new, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.ATOMIC, addr, phase, self._atomic_latency)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_atomic(self.tid, addr, phase)
        injector = self._injector
        if injector is not None:
            injector.now = self.cycles_total
            old = self._words[addr]
            faked = injector.intercept_cas(self.tid, addr, old, expected, new)
            if faked is not None:
                return faked
        return self.mem.atomic_cas(addr, expected, new)

    def atomic_or(self, addr, value, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.ATOMIC, addr, phase, self._atomic_latency)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_atomic(self.tid, addr, phase)
        injector = self._injector
        if injector is not None:
            injector.now = self.cycles_total
            old = self._words[addr]
            faked = injector.intercept_or(self.tid, addr, old, value)
            if faked is not None:
                # report the lock as already held; perform no mutation
                return faked
        return self.mem.atomic_or(addr, value)

    def atomic_add(self, addr, value, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.ATOMIC, addr, phase, self._atomic_latency)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_atomic(self.tid, addr, phase)
        injector = self._injector
        if injector is not None:
            injector.now = self.cycles_total
            old = self._words[addr]
            faked = injector.intercept_add(self.tid, addr, old, value)
            if faked is not None:
                return faked
        return self.mem.atomic_add(addr, value)

    # atomic_inc delegates to atomic_add in the base class, so it is
    # covered; atomic_sub/atomic_exch have no STM fault seam and only gain
    # the sanitizer probe for completeness.
    def atomic_sub(self, addr, value, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.ATOMIC, addr, phase, self._atomic_latency)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.on_atomic(self.tid, addr, phase)
        return self.mem.atomic_sub(addr, value)

    def atomic_exch(self, addr, value, phase=Phase.NATIVE):
        if self._check_bounds:
            self.mem.check(addr)
        self._account(OpKind.ATOMIC, addr, phase, self._atomic_latency)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.on_atomic(self.tid, addr, phase)
        return self.mem.atomic_exch(addr, value)

    # ------------------------------------------------------------------
    # Fences and transaction windows (sanitizer ordering probes)
    # ------------------------------------------------------------------
    def fence(self, phase=Phase.NATIVE):
        ThreadCtx.fence(self, phase)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_fence(self.tid, phase)

    def tx_window_begin(self):
        ThreadCtx.tx_window_begin(self)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_tx_window(self.tid, "begin")

    def tx_window_commit(self):
        ThreadCtx.tx_window_commit(self)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_tx_window(self.tid, "commit")

    def tx_window_abort(self):
        ThreadCtx.tx_window_abort(self)
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.now = self.cycles_total
            sanitizer.on_tx_window(self.tid, "abort")
        injector = self._injector
        if injector is not None:
            # byzantine lanes may replay their stale write-buffer from the
            # abort window (crash/protocol injectors no-op here)
            injector.now = self.cycles_total
            injector.on_tx_abort(self)
