"""Deterministic fault plans and the armed injector.

A :class:`FaultSpec` names one fault *kind* and its trigger point: a memory
region (resolved against the device's named allocations at arm time), an
optional exact address or thread filter, and an occurrence window
(``skip``/``count``) over the matching operations.  Everything is counted
in simulated operation order, so a plan replays identically run after run —
no wall clock, no unseeded randomness.

Fault kinds and the seams they model:

================== ====================================================
``stale_read``      a global read returns the word's *previous* value
                    (a relaxed-memory/incoherent-cache hazard)
``torn_write``      a global write lands partially: only the bits under
                    ``param`` (default ``0xFFFF``) are updated
``dropped_write``   a global write is silently lost
``cas_fail``        an atomic CAS / lock ``atomicOr`` that would have
                    succeeded spuriously reports failure (no mutation)
``lost_lock_release`` a write of an unlock value to the target region is
                    dropped (the lock stays held forever)
``clock_skew``      an ``atomicAdd``/``atomicInc`` on the target region
                    skips its increment and returns the stale value — a
                    non-monotonic global-clock tick
``warp_stall``      the scheduler refuses to issue one warp for a window
                    of issue decisions on its SM (starvation)
================== ====================================================

The plan is *armed* onto a device (:meth:`FaultPlan.arm`), which resolves
region names to address ranges and installs a :class:`FaultInjector` as
``device.fault_injector``.  An armed device routes thread construction
through :class:`~repro.faults.ctx.InstrumentedThreadCtx` and takes the
generic issue path; an unarmed device pays nothing.
"""

FAULT_KINDS = (
    "stale_read",
    "torn_write",
    "dropped_write",
    "cas_fail",
    "lost_lock_release",
    "clock_skew",
    "warp_stall",
)

#: sentinel returned by :meth:`FaultInjector.filter_write` for a dropped store
DROPPED = object()

_MEMORY_KINDS = frozenset(FAULT_KINDS) - {"warp_stall"}


class FaultSpec:
    """One deterministic trigger point (plain data; picklable).

    ``region`` names a device allocation (e.g. ``"g_lockTab"``,
    ``"g_clock"``, a workload's data region); ``addr`` pins one exact word
    instead.  ``tid`` restricts the fault to one thread.  Of the matching
    operations, the first ``skip`` are passed through and the next
    ``count`` are faulted.

    ``param`` is kind-specific: the keep-mask of ``torn_write`` (bits NOT
    in the mask retain their old value).  ``sm``/``warp``/``after``/
    ``duration`` configure ``warp_stall``: starting ``after`` issue
    decisions on SM ``sm``, the scheduler avoids warp ``warp`` for
    ``duration`` decisions (when another warp is resident).
    """

    __slots__ = (
        "kind", "region", "addr", "tid", "skip", "count", "param",
        "sm", "warp", "after", "duration",
    )

    def __init__(self, kind, region=None, addr=None, tid=None, skip=0,
                 count=1, param=None, sm=0, warp=0, after=0, duration=8):
        if kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r; expected one of %s"
                % (kind, ", ".join(FAULT_KINDS))
            )
        if skip < 0 or count < 1:
            raise ValueError("need skip >= 0 and count >= 1")
        if kind == "warp_stall" and duration < 1:
            raise ValueError("warp_stall needs duration >= 1")
        self.kind = kind
        self.region = region
        self.addr = addr
        self.tid = tid
        self.skip = skip
        self.count = count
        self.param = param
        self.sm = sm
        self.warp = warp
        self.after = after
        self.duration = duration

    @classmethod
    def parse(cls, text):
        """Build a spec from CLI syntax ``kind[:key=value,...]``.

        Example: ``stale_read:region=data,skip=3,count=2``.
        """
        kind, _, rest = text.partition(":")
        kwargs = {}
        if rest:
            for item in rest.split(","):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError("bad fault option %r in %r" % (item, text))
                key = key.strip()
                value = value.strip()
                if key not in cls.__slots__ or key == "kind":
                    raise ValueError("unknown fault option %r in %r" % (key, text))
                if key in kwargs:
                    raise ValueError(
                        "duplicate fault option %r in %r" % (key, text)
                    )
                if key == "region":
                    kwargs[key] = value
                else:
                    try:
                        kwargs[key] = int(value, 0)
                    except ValueError:
                        raise ValueError(
                            "fault option %s=%s in %r is not an integer"
                            % (key, value, text)
                        )
        return cls(kind.strip(), **kwargs)

    def as_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        parts = ["%s=%r" % (s, getattr(self, s))
                 for s in self.__slots__[1:] if getattr(self, s) is not None]
        return "FaultSpec(%s%s)" % (self.kind, ", " + ", ".join(parts) if parts else "")


class FaultPlan:
    """An unarmed bag of :class:`FaultSpec`; picklable, reusable."""

    def __init__(self, specs=()):
        self.specs = [
            spec if isinstance(spec, FaultSpec) else FaultSpec.parse(spec)
            for spec in specs
        ]

    def add(self, kind, **kwargs):
        """Append a spec; returns ``self`` for chaining."""
        self.specs.append(FaultSpec(kind, **kwargs))
        return self

    def arm(self, device):
        """Resolve the plan against ``device`` and install the injector.

        Region names are resolved against the device's *current*
        allocations, so arm after workload setup and runtime creation
        (the lock table and clock are runtime allocations).  Returns the
        installed :class:`FaultInjector`.
        """
        injector = FaultInjector(self.specs, device.mem)
        device.fault_injector = injector
        return injector

    @staticmethod
    def disarm(device):
        """Remove any installed injector from ``device``."""
        device.fault_injector = None

    def __len__(self):
        return len(self.specs)

    def __repr__(self):
        return "FaultPlan(%r)" % (self.specs,)


class _Armed:
    """One spec resolved to address ranges, with its occurrence counters."""

    __slots__ = ("spec", "ranges", "seen", "fired")

    def __init__(self, spec, ranges):
        self.spec = spec
        self.ranges = ranges  # list of (lo, hi) half-open; None = any addr
        self.seen = 0
        self.fired = 0

    def matches_addr(self, addr):
        ranges = self.ranges
        if ranges is None:
            return True
        for lo, hi in ranges:
            if lo <= addr < hi:
                return True
        return False

    def take(self):
        """Advance the occurrence counter; True when inside the window."""
        index = self.seen
        self.seen = index + 1
        spec = self.spec
        if spec.skip <= index < spec.skip + spec.count:
            self.fired += 1
            return True
        return False


class FaultInjector:
    """The armed form of a plan: per-category fault lists plus counters.

    Consulted by :class:`~repro.faults.ctx.InstrumentedThreadCtx` on every
    globally-visible operation and by the scheduler's generic issue loop on
    every warp selection.  All methods are deterministic functions of the
    simulated operation order, so armed runs replay bit-identically.
    """

    def __init__(self, specs, mem):
        self._reads = []
        self._writes = []
        self._atomics = []
        self._stalls = []
        #: chronological log of fired faults (dicts; test/CLI evidence)
        self.fired = []
        #: simulated-cycle witness of the issuing lane, kept current by
        #: the instrumented context (detection-latency zero point)
        self.now = 0
        for spec in specs:
            ranges = self._resolve(spec, mem)
            armed = _Armed(spec, ranges)
            if spec.kind == "stale_read":
                self._reads.append(armed)
            elif spec.kind in ("torn_write", "dropped_write", "lost_lock_release"):
                self._writes.append(armed)
            elif spec.kind in ("cas_fail", "clock_skew"):
                self._atomics.append(armed)
            else:  # warp_stall
                self._stalls.append(armed)
        # previous-value shadow for stale reads, maintained only when a
        # stale_read spec is armed (filter_write records the old word)
        self._track_prev = bool(self._reads)
        self._prev = {}
        self._decisions = {}  # sm index -> issue decisions seen

    @staticmethod
    def _resolve(spec, mem):
        if spec.kind == "warp_stall":
            return None
        if spec.addr is not None:
            return [(spec.addr, spec.addr + 1)]
        if spec.region is None:
            return None
        ranges = [
            (region.base, region.end)
            for region in mem.regions
            if region.name == spec.region
        ]
        if not ranges:
            raise ValueError(
                "fault spec %r targets region %r but the device has no such "
                "allocation (regions: %s)"
                % (spec.kind, spec.region,
                   ", ".join(sorted({r.name for r in mem.regions})) or "none")
            )
        return ranges

    def _log(self, armed, tid, addr, detail):
        self.fired.append({
            "kind": armed.spec.kind,
            "tid": tid,
            "addr": addr,
            "detail": detail,
        })

    # ------------------------------------------------------------------
    # Memory hooks (called by InstrumentedThreadCtx)
    # ------------------------------------------------------------------
    def filter_read(self, tid, addr, value):
        """Possibly replace a read value (stale_read)."""
        for armed in self._reads:
            spec = armed.spec
            if spec.tid is not None and spec.tid != tid:
                continue
            if not armed.matches_addr(addr):
                continue
            stale = self._prev.get(addr)
            if stale is None or stale == value:
                continue  # no older value to serve; not a fault occurrence
            if armed.take():
                self._log(armed, tid, addr, "served %d instead of %d" % (stale, value))
                return stale
        return value

    def filter_write(self, tid, addr, value, old):
        """Possibly alter or drop a write; returns the value to store or
        :data:`DROPPED`.  Also maintains the stale-read shadow."""
        if self._track_prev:
            self._prev[addr] = old
        for armed in self._writes:
            spec = armed.spec
            if spec.tid is not None and spec.tid != tid:
                continue
            if not armed.matches_addr(addr):
                continue
            if spec.kind == "lost_lock_release":
                # only a *release* (store of an unlocked/zero-lock-bit word)
                # can be lost; acquisitions go through atomics anyway
                if value & 1:
                    continue
                if armed.take():
                    self._log(armed, tid, addr, "release of %d dropped" % value)
                    return DROPPED
            elif armed.take():
                if spec.kind == "dropped_write":
                    self._log(armed, tid, addr, "store of %d dropped" % value)
                    return DROPPED
                mask = spec.param if spec.param is not None else 0xFFFF
                torn = (value & mask) | (old & ~mask)
                self._log(
                    armed, tid, addr,
                    "store of %d torn to %d (mask 0x%x)" % (value, torn, mask),
                )
                return torn
        return value

    def intercept_cas(self, tid, addr, old, expected, new):
        """Spurious CAS failure: when the CAS would have succeeded, report
        a conflicting value and perform no mutation.  Returns the value to
        hand the caller, or None to perform the real CAS."""
        for armed in self._atomics:
            spec = armed.spec
            if spec.kind != "cas_fail":
                continue
            if spec.tid is not None and spec.tid != tid:
                continue
            if not armed.matches_addr(addr) or old != expected:
                continue
            if armed.take():
                self._log(armed, tid, addr, "CAS(%d -> %d) spuriously failed"
                          % (expected, new))
                return old + 1
        return None

    def intercept_or(self, tid, addr, old, value):
        """Spurious lock-acquire failure for ``atomicOr(lock, LOCKED_BIT)``:
        when the lock was free, report it locked and perform no mutation."""
        for armed in self._atomics:
            spec = armed.spec
            if spec.kind != "cas_fail":
                continue
            if spec.tid is not None and spec.tid != tid:
                continue
            if not armed.matches_addr(addr) or old & value:
                continue
            if armed.take():
                self._log(armed, tid, addr, "atomicOr(0x%x) spuriously failed" % value)
                return old | value
        return None

    def intercept_add(self, tid, addr, old, value):
        """Non-monotonic tick: skip the increment, return the stale value.
        Returns the value to hand the caller, or None for the real add."""
        for armed in self._atomics:
            spec = armed.spec
            if spec.kind != "clock_skew":
                continue
            if spec.tid is not None and spec.tid != tid:
                continue
            if not armed.matches_addr(addr):
                continue
            if armed.take():
                self._log(armed, tid, addr, "tick by %d skipped (stale %d)"
                          % (value, old))
                return old
        return None

    # ------------------------------------------------------------------
    # Scheduler hook
    # ------------------------------------------------------------------
    def select_index(self, sm_index, warps, index):
        """Possibly redirect an issue decision away from a stalled warp.

        Counts issue decisions per SM; inside a spec's
        ``(after, after + duration]`` window the victim warp is skipped in
        favour of the next resident warp.  A lone resident warp is never
        stalled (the device must keep stepping, so the watchdog — not the
        injector — owns the no-progress case).
        """
        stalls = self._stalls
        if not stalls:
            return index
        seen = self._decisions.get(sm_index, 0) + 1
        self._decisions[sm_index] = seen
        for armed in stalls:
            spec = armed.spec
            if spec.sm != sm_index:
                continue
            if not spec.after < seen <= spec.after + spec.duration:
                continue
            if len(warps) <= 1 or warps[index].warp_id != spec.warp:
                continue
            for offset in range(1, len(warps)):
                redirect = (index + offset) % len(warps)
                if warps[redirect].warp_id != spec.warp:
                    armed.fired += 1
                    self._log(armed, -1, -1,
                              "sm %d decision %d: warp %d stalled, issued %d"
                              % (sm_index, seen, spec.warp,
                                 warps[redirect].warp_id))
                    return redirect
        return index

    # ------------------------------------------------------------------
    # Byzantine seams (no-ops here; ByzantineInjector overrides)
    # ------------------------------------------------------------------
    def filter_validation(self, tx, stage, verdict):
        """Validation seam consulted by ``TxThread._filter_validation``;
        crash/protocol faults never lie about verdicts."""
        return verdict

    def on_tx_abort(self, ctx):
        """Abort-window seam raised by ``InstrumentedThreadCtx``."""
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def fired_count(self, kind=None):
        return sum(1 for f in self.fired if kind is None or f["kind"] == kind)

    def summary(self):
        """One line per armed spec with its fired count."""
        lines = []
        for group in (self._reads, self._writes, self._atomics, self._stalls):
            for armed in group:
                lines.append("%r: fired %d" % (armed.spec, armed.fired))
        return "\n".join(lines)
