"""Byzantine adversary layer: lanes that *lie* instead of crashing.

The PR-4 fault corpus (:mod:`repro.faults.plan`) models crash/protocol
bugs — lost stores, stuck clocks, torn bits.  This module models
*byzantine* lanes, following "Byzantine-Tolerant Consensus in
GPU-Inspired Shared Memory" (PAPERS.md, arXiv 2503.12788): designated
threads follow the STM protocol's letter while actively cheating at its
trust points.  The behavior vocabulary (``BYZ_BEHAVIORS``):

``lie_validation``
    report a clean read-set the lane knows is stale: every failing
    validation verdict (TBV/VBV, read-time or commit-time) is flipped to
    "consistent" through the :meth:`~repro.stm.runtime.base.TxThread
    ._filter_validation` seam, so the lane commits doomed transactions.
``torn_publish``
    publish torn lock/version metadata mid-commit: release stores to the
    version-lock table get garbage version bits, the VBV sequence lock
    jumps by a torn even stride, the CGL coarse lock is "released" to a
    nonzero word.
``stale_replay``
    replay stale versions after abort: the lane's aborted write-buffer is
    written straight to global memory from the abort window, outside any
    lock or version discipline.
``lock_hoard``
    hoard locks past the transaction window: the lane's lock/sequence
    release stores are silently dropped, so every lock it commits under
    stays held forever.
``clock_poison``
    poison the global clock: the lane's commit-time clock increment
    instead *rolls the clock back*, so later (innocent) writers reuse
    version numbers.

Like :class:`~repro.faults.plan.FaultPlan`, a :class:`ByzantinePlan` is
seeded purely by the deterministic operation order — armed runs replay
bit-identically — and costs nothing while disarmed (an unarmed device
uses the base thread context untouched).  :class:`ByzantineInjector`
implements the full :class:`~repro.faults.plan.FaultInjector` hook
protocol, so it installs through the same ``device.fault_injector`` seam
and composes with the sanitizer, telemetry, and the multi-GPU context
mixin unchanged.

Containment vocabulary (measured by :mod:`repro.faults.byzcampaign`):

* **blast radius** — innocent transactions corrupted (oracle violations
  attributed to non-byzantine tids by :func:`repro.stm.oracle
  .attribute_history`) by the adversary's actions;
* **detection latency** — simulated cycles from the first lying action
  (``fired[0]["cycle"]``) to the sanitizer's first violation
  (``StmSanitizer.first_violations``).
"""

from repro.faults.plan import DROPPED, FaultPlan
from repro.gpu.events import Phase

#: The byzantine behavior vocabulary (the ``behavior`` field of a spec).
BYZ_BEHAVIORS = (
    "lie_validation",
    "torn_publish",
    "stale_replay",
    "lock_hoard",
    "clock_poison",
)

#: Region names that make up the version-lock metadata plane.
_LOCK_REGIONS = ("g_lockTab", "egpgv_locks")
_SEQ_REGION = "g_seqlock"
_CGL_REGION = "cgl_lock"
_CLOCK_REGIONS = ("g_clock", "egpgv_clock")

#: Default garbage stride for torn publishes / default clock rollback.
_DEFAULT_TEAR = 0x100000
_DEFAULT_ROLLBACK = 2


def _parse_token_int(key, value, text):
    """Parse one integer option value, naming the offending token."""
    try:
        return int(value, 0)
    except ValueError:
        raise ValueError(
            "fault option %s=%s in %r is not an integer" % (key, value, text)
        )


class ByzantineSpec:
    """One byzantine behavior bound to a set of lanes.

    Lanes are designated either explicitly (``tids``, a ``+``-separated
    list in CLI syntax) or by residue class (``stride``/``offset``: every
    thread with ``tid % stride == offset``); with neither given, thread 0
    is the adversary.  ``skip``/``count`` bound the *per-lane* occurrence
    window exactly like :class:`~repro.faults.plan.FaultSpec`: each lane
    skips its first ``skip`` opportunities, then cheats on the next
    ``count``.  ``param`` is behavior-specific: the torn version stride of
    ``torn_publish`` and the rollback amount of ``clock_poison``.
    """

    __slots__ = ("behavior", "tids", "stride", "offset", "skip", "count",
                 "param")

    def __init__(self, behavior, tids=None, stride=None, offset=0, skip=0,
                 count=1, param=None):
        if behavior not in BYZ_BEHAVIORS:
            raise ValueError(
                "unknown byzantine behavior %r; expected one of %s"
                % (behavior, ", ".join(BYZ_BEHAVIORS))
            )
        if skip < 0 or count < 1:
            raise ValueError("need skip >= 0 and count >= 1")
        if stride is not None and stride < 1:
            raise ValueError("need stride >= 1")
        if offset < 0:
            raise ValueError("need offset >= 0")
        self.behavior = behavior
        self.tids = tuple(sorted(tids)) if tids is not None else None
        self.stride = stride
        self.offset = offset
        self.skip = skip
        self.count = count
        self.param = param

    def is_byz(self, tid):
        """True when ``tid`` is one of this spec's designated lanes."""
        tids = self.tids
        if tids is not None:
            return tid in tids
        stride = self.stride
        if stride is not None:
            return tid % stride == self.offset
        return tid == 0

    def lanes(self, total_threads):
        """All designated lane tids below ``total_threads`` (sorted)."""
        tids = self.tids
        if tids is not None:
            return tuple(t for t in tids if t < total_threads)
        stride = self.stride
        if stride is not None:
            return tuple(range(self.offset, total_threads, stride))
        return (0,) if total_threads else ()

    @classmethod
    def parse(cls, text):
        """Build a spec from CLI syntax ``behavior[:key=value,...]``.

        Example: ``torn_publish:stride=16,offset=3,count=4``; explicit
        lanes use ``+``: ``lie_validation:tids=1+17,skip=1``.
        """
        behavior, _, rest = text.partition(":")
        kwargs = {}
        if rest:
            for item in rest.split(","):
                key, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(
                        "bad byzantine option %r in %r" % (item, text)
                    )
                key = key.strip()
                value = value.strip()
                if key not in cls.__slots__ or key == "behavior":
                    raise ValueError(
                        "unknown byzantine option %r in %r" % (key, text)
                    )
                if key in kwargs:
                    raise ValueError(
                        "duplicate byzantine option %r in %r" % (key, text)
                    )
                if key == "tids":
                    kwargs[key] = tuple(
                        _parse_token_int("tids", part, text)
                        for part in value.split("+")
                    )
                else:
                    kwargs[key] = _parse_token_int(key, value, text)
        return cls(behavior.strip(), **kwargs)

    def as_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self):
        parts = ["%s=%r" % (s, getattr(self, s))
                 for s in self.__slots__[1:] if getattr(self, s) is not None]
        return "ByzantineSpec(%s%s)" % (
            self.behavior, ", " + ", ".join(parts) if parts else "")


class ByzantinePlan(FaultPlan):
    """An unarmed bag of :class:`ByzantineSpec`; picklable, reusable.

    Subclasses :class:`~repro.faults.plan.FaultPlan` so every existing
    ``fault_plan=`` seam (``run_under_schedule``, the harness job specs)
    accepts it unchanged; :meth:`arm` installs a
    :class:`ByzantineInjector` instead of a ``FaultInjector``.
    """

    def __init__(self, specs=()):
        self.specs = [
            spec if isinstance(spec, ByzantineSpec) else ByzantineSpec.parse(spec)
            for spec in specs
        ]

    def add(self, behavior, **kwargs):
        """Append a spec; returns ``self`` for chaining."""
        self.specs.append(ByzantineSpec(behavior, **kwargs))
        return self

    def arm(self, device):
        """Install a :class:`ByzantineInjector` on ``device``; arm after
        workload setup and runtime creation so the metadata regions (lock
        table, clock, sequence lock) already exist.  Returns the
        injector."""
        injector = ByzantineInjector(self.specs, device.mem)
        device.fault_injector = injector
        return injector

    def byz_tids(self, total_threads):
        """The union of designated lanes across all specs."""
        tids = set()
        for spec in self.specs:
            tids.update(spec.lanes(total_threads))
        return tids

    def __repr__(self):
        return "ByzantinePlan(%r)" % (self.specs,)


class _ByzArmed:
    """One spec with its per-lane occurrence counters."""

    __slots__ = ("spec", "seen", "fired")

    def __init__(self, spec):
        self.spec = spec
        self.seen = {}  # tid -> opportunities seen
        self.fired = 0

    def take(self, tid):
        """Advance the lane's counter; True when inside its window."""
        index = self.seen.get(tid, 0)
        self.seen[tid] = index + 1
        spec = self.spec
        if spec.skip <= index < spec.skip + spec.count:
            self.fired += 1
            return True
        return False


class ByzantineInjector:
    """The armed form of a plan: implements the ``FaultInjector`` hook
    protocol plus the validation and abort seams.

    All decisions are deterministic functions of the simulated operation
    order, so armed runs replay bit-identically.  ``now`` is kept current
    by :class:`~repro.faults.ctx.InstrumentedThreadCtx` (the issuing
    lane's ``cycles_total``), and every fired entry carries the cycle of
    the lying action — the campaign's detection-latency zero point.
    """

    def __init__(self, specs, mem):
        self._mem = mem
        #: chronological log of byzantine actions (dicts with a ``cycle``)
        self.fired = []
        #: data addresses the adversary mutated outside any transaction
        #: (stale replays) — final-state divergence there is *its* fault
        self.byz_addrs = set()
        #: simulated-cycle witness of the issuing lane (set by the ctx)
        self.now = 0
        self._lie = []
        self._torn = []
        self._replay = []
        self._hoard = []
        self._poison = []
        buckets = {
            "lie_validation": self._lie,
            "torn_publish": self._torn,
            "stale_replay": self._replay,
            "lock_hoard": self._hoard,
            "clock_poison": self._poison,
        }
        for spec in specs:
            buckets[spec.behavior].append(_ByzArmed(spec))
        # Metadata plane, resolved against the current allocations.  A
        # behavior whose seam does not exist on this runtime (e.g. the
        # clock on VBV) simply never fires — that is the "trivially
        # contained" cell of the matrix, not an error.
        lock_ranges = []
        seq_addrs = set()
        cgl_addrs = set()
        clock_addrs = set()
        for region in mem.regions:
            if region.name in _LOCK_REGIONS:
                lock_ranges.append((region.base, region.end))
            elif region.name == _SEQ_REGION:
                seq_addrs.update(range(region.base, region.end))
            elif region.name == _CGL_REGION:
                cgl_addrs.update(range(region.base, region.end))
            elif region.name in _CLOCK_REGIONS:
                clock_addrs.update(range(region.base, region.end))
        self._lock_ranges = lock_ranges
        self._seq_addrs = seq_addrs
        self._cgl_addrs = cgl_addrs
        self._clock_addrs = clock_addrs

    # ------------------------------------------------------------------
    # Metadata classification
    # ------------------------------------------------------------------
    def _in_lock_table(self, addr):
        for lo, hi in self._lock_ranges:
            if lo <= addr < hi:
                return True
        return False

    def _is_release(self, addr, value):
        """Is this store a lock/sequence release (the hoard target)?"""
        if self._in_lock_table(addr):
            return not value & 1
        if addr in self._seq_addrs:
            return value % 2 == 0
        if addr in self._cgl_addrs:
            return value == 0
        return False

    def _tear(self, addr, value, param):
        """The torn form of a metadata publish; None off the metadata
        plane (so occurrence windows only count actual publishes)."""
        stride = param if param is not None else _DEFAULT_TEAR
        if self._in_lock_table(addr):
            # garbage version bits, lock bit preserved: the word looks
            # free but names a version from the future
            return value | (stride << 1)
        if addr in self._seq_addrs:
            # parity-preserving jump: the sequence stays "unlocked" but
            # implies commits that never happened
            return value + (stride << 1)
        if addr in self._cgl_addrs:
            # a "release" that leaves the coarse lock held
            return value | 1 | stride
        return None

    # ------------------------------------------------------------------
    # FaultInjector hook protocol
    # ------------------------------------------------------------------
    def filter_read(self, tid, addr, value):
        return value

    def filter_write(self, tid, addr, value, old):
        for armed in self._hoard:
            if armed.spec.is_byz(tid) and self._is_release(addr, value) \
                    and armed.take(tid):
                self._log(armed, tid, addr,
                          "hoarded: dropped release store of %d" % value)
                return DROPPED
        for armed in self._torn:
            if armed.spec.is_byz(tid):
                torn = self._tear(addr, value, armed.spec.param)
                if torn is not None and armed.take(tid):
                    self._log(armed, tid, addr,
                              "published %d instead of %d" % (torn, value))
                    return torn
        return value

    def intercept_cas(self, tid, addr, old, expected, new):
        return None

    def intercept_or(self, tid, addr, old, value):
        return None

    def intercept_add(self, tid, addr, old, value):
        if self._poison and addr in self._clock_addrs:
            for armed in self._poison:
                if armed.spec.is_byz(tid) and armed.take(tid):
                    spec = armed.spec
                    rollback = (spec.param if spec.param is not None
                                else _DEFAULT_ROLLBACK)
                    poisoned = max(0, old - rollback)
                    self._mem.words[addr] = poisoned
                    self._log(armed, tid, addr,
                              "clock rolled back from %d to %d"
                              % (old, poisoned))
                    # the lane still believes its increment succeeded
                    return old
        return None

    def select_index(self, sm_index, warps, index):
        return index

    # ------------------------------------------------------------------
    # Byzantine-only seams
    # ------------------------------------------------------------------
    def filter_validation(self, tx, stage, verdict):
        """The runtime validation seam (:meth:`TxThread._filter_validation`):
        flip a failing verdict when the lane lies at this opportunity."""
        if verdict or not self._lie:
            return verdict
        tid = tx.tc.tid
        for armed in self._lie:
            if armed.spec.is_byz(tid) and armed.take(tid):
                self.now = tx.tc.cycles_total
                self._log(armed, tid, None,
                          "reported a clean %s validation over a stale "
                          "read-set" % stage)
                return True
        return verdict

    def on_tx_abort(self, ctx):
        """Abort-window seam: replay the lane's stale write-buffer."""
        if not self._replay:
            return
        stm = getattr(ctx, "stm", None)
        if stm is None:
            return
        entries = stm.write_entries()
        # write_entries returns a dict-like (addr -> value) or pair iterable
        writes = list(entries.items() if hasattr(entries, "items")
                      else entries)
        if not writes:
            return
        tid = ctx.tid
        for armed in self._replay:
            if armed.spec.is_byz(tid) and armed.take(tid):
                self.now = ctx.cycles_total
                # Out-of-band memory blast: the lockstep protocol allows
                # one globally-visible op per resumption, so the replay
                # mutates memory directly (adversary stores cost nothing)
                # while still announcing itself to the sanitizer as the
                # unlocked commit-phase stores it semantically is.
                sanitizer = ctx._sanitizer
                words = self._mem.words
                for addr, value in writes:
                    if sanitizer is not None:
                        sanitizer.on_write(tid, addr, value, Phase.COMMIT)
                    words[addr] = value
                    self.byz_addrs.add(addr)
                self._log(armed, tid, writes[0][0],
                          "replayed %d stale write(s) after abort"
                          % len(writes))
                return

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def _log(self, armed, tid, addr, detail):
        self.fired.append({
            "kind": armed.spec.behavior,
            "tid": tid,
            "addr": addr,
            "cycle": self.now,
            "detail": detail,
        })

    def fired_count(self, behavior=None):
        if behavior is None:
            return len(self.fired)
        return sum(1 for entry in self.fired if entry["kind"] == behavior)

    def first_fired_cycle(self):
        """Cycle of the first lying action; None when nothing fired."""
        return self.fired[0]["cycle"] if self.fired else None

    def byz_tids(self, total_threads):
        tids = set()
        for group in (self._lie, self._torn, self._replay, self._hoard,
                      self._poison):
            for armed in group:
                tids.update(armed.spec.lanes(total_threads))
        return tids

    def summary(self):
        counts = {}
        for entry in self.fired:
            counts[entry["kind"]] = counts.get(entry["kind"], 0) + 1
        return counts
