"""Fault injection, online sanitizing, and mutant-efficacy campaigns.

The checker stack of this reproduction — the strict-serializability oracle
(:mod:`repro.stm.oracle`), the interleaving fuzzer (:mod:`repro.sched.fuzz`)
and the online sanitizer added here — argues that the GPU-STM protocols are
correct.  This package supplies the *evidence that the checkers themselves
work*: deterministic fault injection at the simulator's memory/lock/clock/
scheduler seams, an online invariant checker (the sanitizer), and a corpus
of seeded protocol bugs (mutants) with a campaign driver that proves every
mutant is caught by at least one checker while the unmutated runtimes stay
clean.

Layers:

* :mod:`repro.faults.plan` — :class:`FaultSpec`/:class:`FaultPlan` describe
  seeded, deterministic trigger points; :class:`FaultInjector` is the armed
  form a :class:`~repro.gpu.scheduler.Device` consults.  Zero cost when no
  plan is armed (the golden-cycle tests pin bit-identical cycles).
* :mod:`repro.faults.ctx` — :class:`InstrumentedThreadCtx`, the thread
  context that routes every globally-visible operation past the injector
  and the sanitizer (same pattern as the telemetry context).
* :mod:`repro.faults.sanitizer` — :class:`StmSanitizer`, the online
  invariant checker speaking the TxTracer event protocol.
* :mod:`repro.faults.mutants` — the seeded-bug corpus, applied as
  reversible patches to any runtime instance.
* :mod:`repro.faults.campaign` — the mutant x checker efficacy matrix,
  driven through :func:`repro.harness.parallel.run_jobs`.
* :mod:`repro.faults.byzantine` — :class:`ByzantinePlan`, the adversarial
  extension: designated lanes that *lie* (in validation, in published
  metadata, in replayed versions) while the runtime stays correct.
* :mod:`repro.faults.byzcampaign` — the behavior x variant resilience
  matrix (containment, blast radius, detection latency); the
  ``python -m repro byz`` driver.

See ``docs/fault_injection.md`` for the full tour.
"""

from repro.faults.byzantine import (
    BYZ_BEHAVIORS,
    ByzantineInjector,
    ByzantinePlan,
    ByzantineSpec,
)
from repro.faults.byzcampaign import render_byz_matrix, run_byz_campaign
from repro.faults.campaign import run_campaign, render_matrix
from repro.faults.ctx import InstrumentedThreadCtx
from repro.faults.mutants import MUTANTS, Mutant, MutantRuntimeFactory
from repro.faults.plan import FAULT_KINDS, FaultInjector, FaultPlan, FaultSpec
from repro.faults.sanitizer import SanitizerViolation, StmSanitizer

__all__ = [
    "BYZ_BEHAVIORS",
    "ByzantineInjector",
    "ByzantinePlan",
    "ByzantineSpec",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InstrumentedThreadCtx",
    "MUTANTS",
    "Mutant",
    "MutantRuntimeFactory",
    "SanitizerViolation",
    "StmSanitizer",
    "render_byz_matrix",
    "render_matrix",
    "run_byz_campaign",
    "run_campaign",
]
