"""Public STM façade: configuration, runtime registry, transaction driver.

Typical use (the paper's Figure 1 pattern)::

    from repro.gpu import Device
    from repro.stm import StmConfig, make_runtime, run_transaction

    device = Device()
    runtime = make_runtime("optimized", device,
                           StmConfig(num_locks=1024, shared_data_size=8192))

    def kernel(tc, array, size):
        def body(stm):
            value = yield from stm.tx_read(array + 0)
            if not stm.is_opaque:      # the Figure 1 opacity check
                return False
            yield from stm.tx_write(array + 1, value + 1)
            return True

        yield from run_transaction(tc, body)

    device.launch(kernel, grid_blocks, block_threads, args=(array, size),
                  attach=runtime.attach)
"""

from dataclasses import dataclass

from repro.stm.runtime.cgl import CglRuntime
from repro.stm.runtime.egpgv import EgpgvRuntime
from repro.stm.runtime.hv_backoff import HvBackoffRuntime
from repro.stm.runtime.locksorting import LockSortingRuntime
from repro.stm.runtime.optimized import OptimizedRuntime
from repro.stm.runtime.vbv import VbvRuntime

#: Names accepted by :func:`make_runtime`, as evaluated in the paper.
STM_VARIANTS = (
    "cgl",
    "egpgv",
    "vbv",
    "tbv-sorting",
    "hv-sorting",
    "hv-backoff",
    "optimized",
)

#: Extensions beyond the paper's evaluated set: the adaptive HV/TBV
#: switcher (the paper's stated future work) and the section 2.2
#: strawman with encounter-time lock-sorting removed — registered so the
#: livelock-classification tests and the supervision layer's failure
#: taxonomy can drive it through the ordinary harness paths
#: (``make_runtime`` also accepts the short alias ``unsorted``).
EXTENSION_VARIANTS = ("hv-adaptive", "hv-unsorted-nobackoff")


@dataclass
class StmConfig:
    """Knobs shared by the STM runtimes.

    ``num_locks`` is the global version-lock table size (the paper sweeps
    1M-64M; scaled geometries use Ki).  ``shared_data_size`` is the
    shared-data amount hint that drives STM-Optimized's HV/TBV selection.
    """

    num_locks: int = 1024
    stripe_words: int = 1
    shared_data_size: int = 0
    lock_log_buckets: int = 16
    bloom_bits: int = 64
    max_lock_attempts: int = 16
    precommit_vbv: bool = False
    coalesced_logs: bool = True
    record_history: bool = False
    # EGPGV static capacities
    egpgv_max_blocks: int = 64
    egpgv_max_threads_per_block: int = 128
    egpgv_max_accesses: int = 256


def make_runtime(name, device, config=None):
    """Instantiate the STM variant ``name`` on ``device``.

    ``name`` is one of :data:`STM_VARIANTS`; ``config`` defaults to
    ``StmConfig()``.
    """
    config = config or StmConfig()
    common = dict(
        num_locks=config.num_locks,
        stripe_words=config.stripe_words,
        lock_log_buckets=config.lock_log_buckets,
        bloom_bits=config.bloom_bits,
        max_lock_attempts=config.max_lock_attempts,
        precommit_vbv=config.precommit_vbv,
        coalesced_logs=config.coalesced_logs,
        record_history=config.record_history,
    )
    if name == "cgl":
        return CglRuntime(device, record_history=config.record_history)
    if name == "egpgv":
        return EgpgvRuntime(
            device,
            num_locks=config.num_locks,
            max_blocks=config.egpgv_max_blocks,
            max_threads_per_block=config.egpgv_max_threads_per_block,
            max_accesses=config.egpgv_max_accesses,
            coalesced_logs=config.coalesced_logs,
            record_history=config.record_history,
        )
    if name == "vbv":
        return VbvRuntime(
            device,
            bloom_bits=config.bloom_bits,
            coalesced_logs=config.coalesced_logs,
            record_history=config.record_history,
        )
    if name == "tbv-sorting":
        return LockSortingRuntime(device, use_vbv=False, **common)
    if name == "hv-sorting":
        return LockSortingRuntime(device, use_vbv=True, **common)
    if name == "hv-backoff":
        common.pop("precommit_vbv")
        return HvBackoffRuntime(
            device, precommit_vbv=config.precommit_vbv, **common
        )
    if name == "hv-adaptive":
        from repro.stm.runtime.adaptive import HvAdaptiveRuntime

        common.pop("precommit_vbv")
        return HvAdaptiveRuntime(
            device, precommit_vbv=config.precommit_vbv, **common
        )
    if name in ("unsorted", "hv-unsorted-nobackoff"):
        from repro.stm.runtime.unsorted import UnsortedNoBackoffRuntime

        # the strawman's defining property is unbounded symmetric retries
        # with no backoff: lock acquisition never gives up, so crossed
        # lock orders livelock instead of aborting their way to progress
        common["max_lock_attempts"] = 10**9
        return UnsortedNoBackoffRuntime(device, use_vbv=True, **common)
    if name == "optimized":
        return OptimizedRuntime(
            device, shared_data_size=config.shared_data_size, **common
        )
    raise ValueError(
        "unknown STM variant %r; expected one of %s"
        % (name, ", ".join(STM_VARIANTS + EXTENSION_VARIANTS))
    )


def run_transaction(tc, body, max_restarts=None, registers=None):
    """Execute ``body`` as one atomic transaction, retrying until commit.

    ``body(stm)`` is a generator receiving the thread's :class:`TxThread`;
    it returns False (or anything falsy other than None) when it observed
    ``stm.is_opaque == False`` and must be aborted — the Figure 1 pattern.
    ``max_restarts`` bounds retries for tests; None means retry forever
    (the paper's semantics: livelock freedom guarantees progress).

    ``registers`` implements the paper's register checkpointing (section
    3.2.3): a mutable dict of kernel-local variables that the body both
    reads and writes.  Its contents are checkpointed before each attempt
    and restored on abort, so a restarted body re-runs from the same local
    state — the facility the paper says a programmer or compiler inserts
    for the rare transactions that need it.
    """
    stm = tc.stm
    restarts = 0
    while True:
        checkpoint = dict(registers) if registers is not None else None
        yield from stm.tx_begin()
        outcome = yield from body(stm)
        ok = True if outcome is None else bool(outcome)
        if ok and stm.is_opaque:
            committed = yield from stm.tx_commit()
            if committed:
                return
        else:
            yield from stm.tx_abort()
        if registers is not None:
            registers.clear()
            registers.update(checkpoint)
        restarts += 1
        if max_restarts is not None and restarts > max_restarts:
            raise RuntimeError(
                "transaction of thread %d exceeded %d restarts"
                % (tc.tid, max_restarts)
            )
