"""Transaction event tracing: conflict debugging for GPU-STM programs.

Attach a :class:`TxTracer` to any runtime and every commit and abort is
recorded with its thread, outcome, reason and footprint sizes.  The tracer
answers the questions a developer asks when a transactional kernel
misbehaves: *who aborts, why, how often, and how big are the transactions
that lose?*

Usage::

    runtime = make_runtime("hv-sorting", device, config)
    tracer = TxTracer()
    runtime.tracer = tracer
    device.launch(kernel, grid, block, attach=runtime.attach)
    print(tracer.summary())
    tracer.to_csv("trace.csv")
"""


class TxEvent:
    """One commit or abort event."""

    __slots__ = ("sequence", "tid", "outcome", "reason", "reads", "writes", "version")

    def __init__(self, sequence, tid, outcome, reason, reads, writes, version):
        self.sequence = sequence
        self.tid = tid
        self.outcome = outcome  # "commit" | "abort"
        self.reason = reason    # abort reason or None
        self.reads = reads
        self.writes = writes
        self.version = version

    def as_row(self):
        return (
            self.sequence,
            self.tid,
            self.outcome,
            self.reason or "",
            self.reads,
            self.writes,
            "" if self.version is None else self.version,
        )

    def __repr__(self):
        return "TxEvent(#%d tid=%d %s%s r=%d w=%d)" % (
            self.sequence,
            self.tid,
            self.outcome,
            "" if not self.reason else ":" + self.reason,
            self.reads,
            self.writes,
        )


class TxTracer:
    """Collects :class:`TxEvent` records from a runtime."""

    CSV_HEADER = "sequence,tid,outcome,reason,reads,writes,version"

    def __init__(self, capacity=None):
        self.events = []
        self.capacity = capacity
        self._sequence = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Runtime-facing hooks
    # ------------------------------------------------------------------
    def on_commit(self, tx, version):
        self._record(tx, "commit", None, version)

    def on_abort(self, tx, reason):
        self._record(tx, "abort", reason, None)

    def _record(self, tx, outcome, reason, version):
        self._sequence += 1
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TxEvent(
                self._sequence,
                tx.tc.tid,
                outcome,
                reason,
                len(list(tx.read_entries())),
                len(tx.write_entries()),
                version,
            )
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def commits(self):
        return [e for e in self.events if e.outcome == "commit"]

    def aborts(self, reason=None):
        return [
            e
            for e in self.events
            if e.outcome == "abort" and (reason is None or e.reason == reason)
        ]

    def abort_reasons(self):
        """Histogram of abort reasons."""
        histogram = {}
        for event in self.aborts():
            histogram[event.reason] = histogram.get(event.reason, 0) + 1
        return histogram

    def hottest_threads(self, top=5):
        """Threads ranked by abort count (the conflict hotspots)."""
        per_thread = {}
        for event in self.aborts():
            per_thread[event.tid] = per_thread.get(event.tid, 0) + 1
        ranked = sorted(per_thread.items(), key=lambda item: -item[1])
        return ranked[:top]

    def summary(self):
        """Human-readable one-screen digest."""
        commits = self.commits()
        aborts = self.aborts()
        lines = [
            "tx trace: %d commits, %d aborts (%d events%s)"
            % (
                len(commits),
                len(aborts),
                len(self.events),
                ", %d dropped" % self.dropped if self.dropped else "",
            )
        ]
        for reason, count in sorted(self.abort_reasons().items()):
            lines.append("  abort[%s]: %d" % (reason, count))
        for tid, count in self.hottest_threads():
            lines.append("  hot thread %d: %d aborts" % (tid, count))
        return "\n".join(lines)

    def to_csv(self, path):
        """Dump all events to a CSV file; returns the row count.

        The header row is always written, so an empty trace still yields a
        parseable file.  Rows go through the :mod:`csv` module, which
        quotes any field containing a delimiter — abort reasons are free
        text and may grow commas.  ``reason`` and ``version`` are blank
        for the outcomes that have none (commits have no reason, aborts
        no version).
        """
        import csv

        from repro.common.fsio import atomic_open

        with atomic_open(path, newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.CSV_HEADER.split(","))
            for event in self.events:
                writer.writerow(event.as_row())
        return len(self.events)
