"""Version locks and the global lock table (paper Algorithm 2, section 3.2.1).

Each global version lock is one unsigned word: the least significant bit says
whether the memory stripe it manages is currently locked by a committing
transaction; the remaining bits hold the stripe's version — the value of the
global clock when the stripe was last committed to.

The table maps addresses to locks by stripe hashing: for a lock table of
2**k entries, bits [stripe_shift, stripe_shift + k) of the word address
select the lock (the paper uses bits 2..21 of the byte address for a 2**20
table, i.e. word-granularity stripes).
"""

LOCKED_BIT = 1


def make_version_lock(version, locked=False):
    """Encode a (version, locked) pair into a version-lock word."""
    if version < 0:
        raise ValueError("version must be non-negative")
    return (version << 1) | (LOCKED_BIT if locked else 0)


def is_locked(word):
    """True if the version-lock word has its lock bit set."""
    return bool(word & LOCKED_BIT)


def version_of(word):
    """Extract the version from a version-lock word (Algorithm 3's >> 1)."""
    return word >> 1


class GlobalLockTable:
    """The array of global version locks shared by all transactions."""

    __slots__ = ("mem", "base", "num_locks", "_mask", "_stripe_shift")

    def __init__(self, mem, num_locks, stripe_words=1, name="g_lockTab"):
        if num_locks < 1 or num_locks & (num_locks - 1):
            raise ValueError("num_locks must be a positive power of two")
        if stripe_words < 1 or stripe_words & (stripe_words - 1):
            raise ValueError("stripe_words must be a positive power of two")
        self.mem = mem
        self.num_locks = num_locks
        self.base = mem.alloc(num_locks, name)
        self._mask = num_locks - 1
        self._stripe_shift = stripe_words.bit_length() - 1

    def index_of(self, addr):
        """Hash a word address to its lock index (paper's ``hash(addr)``)."""
        return (addr >> self._stripe_shift) & self._mask

    def lock_addr(self, index):
        """Global memory address of lock ``index``."""
        return self.base + index

    def lock_addr_for(self, addr):
        """Global memory address of the lock managing data address ``addr``."""
        return self.base + self.index_of(addr)

    # Convenience inspection helpers (tests / debugging; not used on the
    # simulated-device fast path, which reads through ThreadCtx).
    def peek(self, index):
        """Raw version-lock word of lock ``index``."""
        return self.mem.read(self.base + index)

    def locked_count(self):
        """Number of currently locked entries (should be 0 at kernel end)."""
        return sum(
            1
            for i in range(self.num_locks)
            if is_locked(self.mem.read(self.base + i))
        )

    def max_version(self):
        """Largest version present in the table."""
        return max(
            version_of(self.mem.read(self.base + i)) for i in range(self.num_locks)
        )

    def metrics_summary(self):
        """Gauge snapshot for the telemetry layer (host-side, post-run)."""
        return {
            "num_locks": self.num_locks,
            "locked": self.locked_count(),
            "max_version": self.max_version(),
        }
