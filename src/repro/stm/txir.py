"""TxIR — compiler-style transaction authoring (paper section 4.1).

The paper closes its programming-model discussion with: "Compiler support
can further reduce the complexity of GPU-STM programming: (1) log
operations and opacity checking can be automatically inserted, and (2)
explicit calls to TXRead/Write can be replaced by simple atomic
annotations."  This module is that compiler layer, scaled to the simulator:
a tiny register-based intermediate representation for transaction bodies,
plus an interpreter that lowers it onto the TXRead/TXWrite API with every
opacity check inserted automatically.

A program is a list of instructions over named virtual registers::

    from repro.stm.txir import (
        Add, Const, Load, Mul, Store, Sub, atomic, compile_body)

    # atomically: dst += src  (a transfer)
    program = [
        Load("s", base, index="i"),      # s <- mem[base + R[i]]
        Load("d", base, index="j"),
        Sub("s2", "s", "amt"),
        Add("d2", "d", "amt"),
        Store(base, "s2", index="i"),    # mem[base + R[i]] <- R[s2]
        Store(base, "d2", index="j"),
    ]
    body = compile_body(program)         # -> a run_transaction body
    yield from atomic(tc, program, registers={"i": 3, "j": 5, "amt": 1})

Every ``Load`` is lowered to ``tx_read`` followed by the Figure 1 opacity
check; aborted attempts are retried by :func:`repro.stm.api.run_transaction`
with the virtual registers checkpointed — the programmer writes neither.

The IR is deliberately small (loads, stores, ALU ops, bounded conditional
skip) but genuinely expressive enough for the paper's workload kernels; see
``tests/stm/test_txir.py`` for a random-program differential test against a
sequential reference interpreter.
"""

from repro.stm.api import run_transaction


class TxIrError(Exception):
    """Malformed TxIR program or register misuse."""


class _Instruction:
    """Base class: every instruction knows how to validate itself."""

    __slots__ = ()

    def check(self):
        """Raise :class:`TxIrError` on malformed operands."""


def _require_register(name, what):
    if not isinstance(name, str) or not name:
        raise TxIrError("%s must be a non-empty register name, got %r" % (what, name))


class Const(_Instruction):
    """R[dst] <- literal value."""

    __slots__ = ("dst", "value")

    def __init__(self, dst, value):
        self.dst = dst
        self.value = value

    def check(self):
        _require_register(self.dst, "Const dst")
        if not isinstance(self.value, int):
            raise TxIrError("Const value must be an int, got %r" % (self.value,))


class Mov(_Instruction):
    """R[dst] <- R[src]."""

    __slots__ = ("dst", "src")

    def __init__(self, dst, src):
        self.dst = dst
        self.src = src

    def check(self):
        _require_register(self.dst, "Mov dst")
        _require_register(self.src, "Mov src")


class _Alu(_Instruction):
    """R[dst] <- R[a] op R[b]."""

    __slots__ = ("dst", "a", "b")

    def __init__(self, dst, a, b):
        self.dst = dst
        self.a = a
        self.b = b

    def check(self):
        _require_register(self.dst, "%s dst" % type(self).__name__)
        _require_register(self.a, "%s a" % type(self).__name__)
        _require_register(self.b, "%s b" % type(self).__name__)

    @staticmethod
    def apply(a, b):
        raise NotImplementedError


class Add(_Alu):
    __slots__ = ()

    @staticmethod
    def apply(a, b):
        return a + b


class Sub(_Alu):
    __slots__ = ()

    @staticmethod
    def apply(a, b):
        return a - b


class Mul(_Alu):
    __slots__ = ()

    @staticmethod
    def apply(a, b):
        return a * b


class Xor(_Alu):
    __slots__ = ()

    @staticmethod
    def apply(a, b):
        return a ^ b


class Load(_Instruction):
    """R[dst] <- mem[base + R[index] (or + offset)]; transactional."""

    __slots__ = ("dst", "base", "index", "offset")

    def __init__(self, dst, base, index=None, offset=0):
        self.dst = dst
        self.base = base
        self.index = index
        self.offset = offset

    def check(self):
        _require_register(self.dst, "Load dst")
        if self.index is not None:
            _require_register(self.index, "Load index")
        if not isinstance(self.base, int) or not isinstance(self.offset, int):
            raise TxIrError("Load base/offset must be ints")


class Store(_Instruction):
    """mem[base + R[index] (or + offset)] <- R[src]; transactional."""

    __slots__ = ("src", "base", "index", "offset")

    def __init__(self, base, src, index=None, offset=0):
        self.base = base
        self.src = src
        self.index = index
        self.offset = offset

    def check(self):
        _require_register(self.src, "Store src")
        if self.index is not None:
            _require_register(self.index, "Store index")
        if not isinstance(self.base, int) or not isinstance(self.offset, int):
            raise TxIrError("Store base/offset must be ints")


class SkipIfZero(_Instruction):
    """Skip the next ``count`` instructions when R[cond] == 0.

    Forward-only and bounded, so programs always terminate — the property a
    compiler would guarantee before emitting transactional code.
    """

    __slots__ = ("cond", "count")

    def __init__(self, cond, count=1):
        self.cond = cond
        self.count = count

    def check(self):
        _require_register(self.cond, "SkipIfZero cond")
        if not isinstance(self.count, int) or self.count < 1:
            raise TxIrError("SkipIfZero count must be a positive int")


def check_program(program):
    """Validate a program; returns it (compiler front-end checks)."""
    if not program:
        raise TxIrError("empty TxIR program")
    for position, instruction in enumerate(program):
        if not isinstance(instruction, _Instruction):
            raise TxIrError(
                "instruction %d is %r, not a TxIR instruction"
                % (position, instruction)
            )
        instruction.check()
        if isinstance(instruction, SkipIfZero):
            if position + instruction.count >= len(program):
                raise TxIrError(
                    "SkipIfZero at %d skips past the end of the program" % position
                )
    return program


def _address(instruction, registers):
    base = instruction.base + instruction.offset
    if instruction.index is not None:
        base += registers.get(instruction.index, 0)
    return base


def compile_body(program, registers):
    """Lower a TxIR program to a ``run_transaction`` body generator.

    The "compiler-inserted" parts: every Load goes through ``tx_read`` with
    the opacity check appended; every Store is buffered via ``tx_write``.
    ``registers`` is the live register file (shared with the caller so
    results are visible after commit).
    """
    check_program(program)

    def body(stm):
        skip = 0
        for instruction in program:
            if skip:
                skip -= 1
                continue
            if isinstance(instruction, Const):
                registers[instruction.dst] = instruction.value
            elif isinstance(instruction, Mov):
                registers[instruction.dst] = registers.get(instruction.src, 0)
            elif isinstance(instruction, _Alu):
                registers[instruction.dst] = instruction.apply(
                    registers.get(instruction.a, 0), registers.get(instruction.b, 0)
                )
            elif isinstance(instruction, Load):
                value = yield from stm.tx_read(_address(instruction, registers))
                if not stm.is_opaque:  # auto-inserted opacity check
                    return False
                registers[instruction.dst] = value
            elif isinstance(instruction, Store):
                yield from stm.tx_write(
                    _address(instruction, registers),
                    registers.get(instruction.src, 0),
                )
            elif isinstance(instruction, SkipIfZero):
                if registers.get(instruction.cond, 0) == 0:
                    skip = instruction.count
        return True

    return body


def atomic(tc, program, registers=None, max_restarts=None):
    """Run a TxIR ``program`` as one atomic transaction (the paper's
    "simple atomic annotation").  Registers are checkpointed across retries
    automatically.  Returns the final register file."""
    registers = registers if registers is not None else {}
    body = compile_body(program, registers)
    yield from run_transaction(tc, body, max_restarts=max_restarts, registers=registers)
    return registers


def reference_interpret(program, registers, memory):
    """Sequential reference semantics of a TxIR program (test oracle).

    ``memory`` is a dict-like of address -> value; mutated in place.
    """
    check_program(program)
    skip = 0
    for instruction in program:
        if skip:
            skip -= 1
            continue
        if isinstance(instruction, Const):
            registers[instruction.dst] = instruction.value
        elif isinstance(instruction, Mov):
            registers[instruction.dst] = registers.get(instruction.src, 0)
        elif isinstance(instruction, _Alu):
            registers[instruction.dst] = instruction.apply(
                registers.get(instruction.a, 0), registers.get(instruction.b, 0)
            )
        elif isinstance(instruction, Load):
            registers[instruction.dst] = memory.get(_address(instruction, registers), 0)
        elif isinstance(instruction, Store):
            memory[_address(instruction, registers)] = registers.get(
                instruction.src, 0
            )
        elif isinstance(instruction, SkipIfZero):
            if registers.get(instruction.cond, 0) == 0:
                skip = instruction.count
    return registers
