"""Transactional read- and write-sets with coalesced warp organization.

Functionally a read-set is an append-only log of (address, observed value)
pairs and a write-set is a last-writer-wins map — exactly Algorithm 3's
``reads`` and ``writes``.

The paper's twist (section 3.1, "coalesced read-/write-set organization") is
in where the logs *live*: the sets of all transactions in a warp are merged
so that entry *i* of the merged log belongs to lane ``i mod warp_size``, and
a warp-wide append lands in consecutive global-memory words — one coalesced
memory transaction instead of ``warp_size`` scattered ones.  The simulator
models that through the cost charged per append: cheap, cache-friendly
cycles under the coalesced layout, a full scattered memory transaction per
lane otherwise (the ablation benchmark flips this switch).
"""

from repro.gpu.events import Phase


class LogCosting:
    """Cost policy for read-/write-set bookkeeping, shared per warp."""

    __slots__ = ("coalesced",)

    def __init__(self, coalesced):
        self.coalesced = coalesced

    def charge_append(self, tc, phase=Phase.BUFFERING):
        """Charge one log append on thread ``tc``."""
        if self.coalesced:
            tc.local_op(phase)
        else:
            tc.scattered_meta_ops(1, phase)

    def charge_scan(self, tc, entries, phase=Phase.CONSISTENCY):
        """Charge a scan over ``entries`` log entries (e.g. VBV bookkeeping)."""
        if entries <= 0:
            return
        if self.coalesced:
            tc.local_op(phase, count=entries)
        else:
            tc.scattered_meta_ops(entries, phase)


class ReadSet:
    """Append-only log of (address, value) pairs observed by a transaction."""

    __slots__ = ("entries", "_costing")

    def __init__(self, costing):
        self.entries = []
        self._costing = costing

    def append(self, tc, addr, value, phase=Phase.BUFFERING):
        """Log a transactional read (Algorithm 3 line 25)."""
        self.entries.append((addr, value))
        self._costing.charge_append(tc, phase)

    def clear(self):
        self.entries.clear()

    def addresses(self):
        """Distinct addresses in the read-set."""
        return {addr for addr, _value in self.entries}

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


class WriteSet:
    """Last-writer-wins buffer of speculative writes."""

    __slots__ = ("values", "_costing")

    def __init__(self, costing):
        self.values = {}
        self._costing = costing

    def put(self, tc, addr, value, phase=Phase.BUFFERING):
        """Buffer a transactional write (Algorithm 3 line 37)."""
        self.values[addr] = value
        self._costing.charge_append(tc, phase)

    def get(self, addr):
        """Value previously written to ``addr`` by this transaction, or None.

        Callers must have consulted the Bloom filter / ``addr in ws`` first;
        a read hit also costs a (cheap) log access, charged by the caller.
        """
        return self.values.get(addr)

    def clear(self):
        self.values.clear()

    def __contains__(self, addr):
        return addr in self.values

    def __len__(self):
        return len(self.values)

    def items(self):
        return self.values.items()


def make_warp_costing(tc, coalesced=True):
    """Return the warp-shared :class:`LogCosting`, creating it on first use.

    All transactions of a warp share one costing object, mirroring the
    merged physical layout of their logs.
    """
    shared = tc.warp.shared
    costing = shared.get("log_costing")
    if costing is None:
        costing = LogCosting(coalesced=coalesced)
        shared["log_costing"] = costing
    return costing
