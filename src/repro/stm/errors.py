"""Exception hierarchy of the STM runtimes."""


class StmError(Exception):
    """Base class for STM runtime errors."""


class EgpgvCapacityError(StmError):
    """STM-EGPGV exceeded its fixed per-block metadata capacity.

    The EGPGV baseline (Cederman et al.) supports transactions only at
    thread-block granularity with statically sized logs; large launches
    overflow them.  This reproduces the paper's Figure 3 observation that
    "STM-EGPGV crashes at relatively small numbers of threads".
    """
