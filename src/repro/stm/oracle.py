"""Strict-serializability oracle (test infrastructure).

GPU-STM's correctness argument (paper section 3.3) is opacity: every
committed transaction appears to occur atomically at a single point — for
writers, the global-clock increment; for read-only transactions, the point
their snapshot was last verified.

When a runtime is created with ``record_history=True``, it logs every
committed transaction's read-set (address, observed value), write-set and
commit version.  :func:`check_history` replays those records in
serialization order against the pre-kernel memory image and verifies:

1. **Read consistency** — every recorded read matches the replayed state at
   the transaction's serialization point (or the transaction's own write,
   for direct-update runtimes like CGL whose reads can follow own writes);
2. **Final-state agreement** — the replayed writes produce exactly the
   post-kernel memory image on every written address.

Any opacity or atomicity violation in a runtime shows up as a counterexample
here, which is what the randomized (hypothesis) tests hunt for.
"""


class SerializabilityViolation(AssertionError):
    """The recorded history is not strictly serializable."""


def _sort_key(record):
    # Writers serialize at their unique commit version; a read-only
    # transaction with snapshot v serializes just after writer v.
    return (record.version, 1 if not record.writes else 0)


def check_history(history, initial_words, final_mem):
    """Replay ``history`` over ``initial_words``; raise on any violation.

    ``initial_words`` is the full memory image (list) captured before the
    kernel ran; ``final_mem`` is the device memory after.  Returns the
    number of checked transactions.
    """
    state = {}

    def current(addr):
        return state.get(addr, initial_words[addr] if addr < len(initial_words) else 0)

    for record in sorted(history, key=_sort_key):
        own_writes = record.writes
        for addr, observed in record.reads:
            expected = current(addr)
            if observed != expected:
                if addr in own_writes and observed == own_writes[addr]:
                    # Direct-update runtimes (CGL, EGPGV-style re-reads) may
                    # legitimately observe their own earlier write.
                    continue
                raise SerializabilityViolation(
                    "tx tid=%d version=%s read addr=%d value=%d but the "
                    "serialized state holds %d"
                    % (record.tid, record.version, addr, observed, expected)
                )
        for addr, value in own_writes.items():
            state[addr] = value

    for addr, value in state.items():
        device_value = final_mem.read(addr)
        if device_value != value:
            raise SerializabilityViolation(
                "final memory mismatch at addr=%d: replay gives %d, device "
                "holds %d" % (addr, value, device_value)
            )
    return len(history)


def committed_writer_versions(history):
    """All writer commit versions (used to assert uniqueness in tests)."""
    return [record.version for record in history if record.writes]
