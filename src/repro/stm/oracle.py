"""Strict-serializability oracle (test infrastructure).

GPU-STM's correctness argument (paper section 3.3) is opacity: every
committed transaction appears to occur atomically at a single point — for
writers, the global-clock increment; for read-only transactions, the point
their snapshot was last verified.

When a runtime is created with ``record_history=True``, it logs every
committed transaction's read-set (address, observed value), write-set and
commit version.  :func:`check_history` replays those records in
serialization order against the pre-kernel memory image and verifies:

1. **Read consistency** — every recorded read matches the replayed state at
   the transaction's serialization point (or the transaction's own write,
   for direct-update runtimes like CGL whose reads can follow own writes);
2. **Final-state agreement** — the replayed writes produce exactly the
   post-kernel memory image on every written address.

Any opacity or atomicity violation in a runtime shows up as a counterexample
here, which is what the randomized (hypothesis) tests hunt for.
"""


class SerializabilityViolation(AssertionError):
    """The recorded history is not strictly serializable."""


def _sort_key(record):
    # Writers serialize at their unique commit version; a read-only
    # transaction with snapshot v serializes just after writer v.
    return (record.version, 1 if not record.writes else 0)


def check_history(history, initial_words, final_mem):
    """Replay ``history`` over ``initial_words``; raise on any violation.

    ``initial_words`` is the full memory image (list) captured before the
    kernel ran; ``final_mem`` is the device memory after.  Returns the
    number of checked transactions.
    """
    state = {}

    def current(addr):
        return state.get(addr, initial_words[addr] if addr < len(initial_words) else 0)

    for record in sorted(history, key=_sort_key):
        own_writes = record.writes
        for addr, observed in record.reads:
            expected = current(addr)
            if observed != expected:
                if addr in own_writes and observed == own_writes[addr]:
                    # Direct-update runtimes (CGL, EGPGV-style re-reads) may
                    # legitimately observe their own earlier write.
                    continue
                raise SerializabilityViolation(
                    "tx tid=%d version=%s read addr=%d value=%d but the "
                    "serialized state holds %d"
                    % (record.tid, record.version, addr, observed, expected)
                )
        for addr, value in own_writes.items():
            state[addr] = value

    for addr, value in state.items():
        device_value = final_mem.read(addr)
        if device_value != value:
            raise SerializabilityViolation(
                "final memory mismatch at addr=%d: replay gives %d, device "
                "holds %d" % (addr, value, device_value)
            )
    return len(history)


def attribute_history(history, initial_words, final_mem, byz_tids=(),
                      byz_addrs=(), max_examples=8):
    """Non-raising :func:`check_history` variant with byzantine attribution.

    Replays the history exactly like :func:`check_history` but classifies
    every violation by culprit: a read violation belongs to the
    transaction that recorded it (byzantine when ``record.tid`` is in
    ``byz_tids``); a final-state divergence belongs to the adversary when
    the last replayed writer of the address is byzantine or the address
    appears in ``byz_addrs`` (out-of-transaction byzantine stores, e.g.
    stale replays), and to the innocents otherwise.

    Returns a dict with the split counts; ``blast_radius`` — the number
    of *innocent* transactions corrupted plus unexplained final
    divergences — is the campaign's containment metric (0 == contained).
    Ties between duplicate versions (a poisoned clock) replay in tid
    order so the attribution itself is deterministic.
    """
    byz_tids = frozenset(byz_tids)
    byz_addrs = frozenset(byz_addrs)
    state = {}
    last_writer = {}

    def current(addr):
        return state.get(addr, initial_words[addr] if addr < len(initial_words) else 0)

    byz_reads = 0
    innocent_reads = 0
    corrupted_tids = set()
    examples = []

    def note(kind, is_byz, text):
        if len(examples) < max_examples:
            examples.append("%s[%s]: %s"
                            % (kind, "byz" if is_byz else "innocent", text))

    for record in sorted(history, key=lambda r: _sort_key(r) + (r.tid,)):
        own_writes = record.writes
        is_byz = record.tid in byz_tids
        for addr, observed in record.reads:
            expected = current(addr)
            if observed != expected:
                if addr in own_writes and observed == own_writes[addr]:
                    continue
                if is_byz:
                    byz_reads += 1
                else:
                    innocent_reads += 1
                    corrupted_tids.add(record.tid)
                note("read", is_byz,
                     "tx tid=%d version=%s addr=%d saw %d, serialized "
                     "state holds %d"
                     % (record.tid, record.version, addr, observed, expected))
                break  # one violation corrupts the whole transaction
        for addr, value in own_writes.items():
            state[addr] = value
            last_writer[addr] = record.tid

    byz_divergence = 0
    innocent_divergence = 0
    for addr, value in state.items():
        device_value = final_mem.read(addr)
        if device_value != value:
            is_byz = addr in byz_addrs or last_writer.get(addr) in byz_tids
            if is_byz:
                byz_divergence += 1
            else:
                innocent_divergence += 1
            note("final", is_byz,
                 "addr=%d: replay gives %d, device holds %d"
                 % (addr, value, device_value))

    return {
        "checked": len(history),
        "byz_read_violations": byz_reads,
        "innocent_read_violations": innocent_reads,
        "byz_divergence": byz_divergence,
        "innocent_divergence": innocent_divergence,
        "corrupted_innocent_txs": len(corrupted_tids),
        "blast_radius": innocent_reads + innocent_divergence,
        "examples": examples,
    }


def committed_writer_versions(history):
    """All writer commit versions (used to assert uniqueness in tests)."""
    return [record.version for record in history if record.writes]
