"""Encounter-time lock-sorting: the local lock-log (paper section 3.1).

Every transactional read or write inserts the id of the global version lock
managing the touched stripe into a thread-local log, *keeping the log sorted
as it grows*.  At commit time the log is walked front to back, so all
transactions acquire locks in one global order (ascending lock id) and
lockstep warps cannot livelock — no backoff needed.

Sorted insertion into a flat log costs O(n) comparisons per insert, O(n^2)
per transaction.  The paper reduces this by organizing the log as an
*order-preserving hash table*: an incoming lock id is hashed to a bucket
(bucket boundaries partition the id range in order), then insertion-sorted
within that bucket only.  Iterating buckets first-to-last and entries
in-bucket yields the globally sorted sequence.

The log also carries the paper's per-entry read-bit and write-bit
(Algorithm 2's two low bits of each local lock-table entry), and merges
duplicates so each lock is acquired at most once.  ``comparisons`` counts
insertion comparisons so the ablation benchmark can show the hashed layout's
win over a single sorted list.
"""


class LockEntry:
    """One local lock-table entry: lock id plus read-/write-bits."""

    __slots__ = ("lock_id", "write", "read")

    def __init__(self, lock_id, write, read):
        self.lock_id = lock_id
        self.write = write
        self.read = read

    def __repr__(self):
        return "LockEntry(%d, wr=%d, rd=%d)" % (self.lock_id, self.write, self.read)


class LockLog:
    """Order-preserving hashed lock-log of one transaction."""

    __slots__ = (
        "num_locks", "num_buckets", "_buckets", "_ids", "comparisons", "count",
        "_flat",
    )

    def __init__(self, num_locks, num_buckets=16):
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.num_locks = num_locks
        self.num_buckets = min(num_buckets, num_locks)
        self._buckets = [[] for _ in range(self.num_buckets)]
        self._ids = {}
        self.comparisons = 0
        self.count = 0
        # cached flattened (sorted) entry list; commit-time lock walks
        # iterate the log once per acquisition attempt, so the flatten is
        # done once per mutation instead of once per walk
        self._flat = None

    def _bucket_of(self, lock_id):
        # Order-preserving partition of [0, num_locks) into num_buckets ranges.
        return lock_id * self.num_buckets // self.num_locks

    def insert(self, lock_id, write=False, read=False):
        """Insert ``lock_id`` keeping sorted order; merge duplicate entries.

        Returns the entry (new or merged).
        """
        if not 0 <= lock_id < self.num_locks:
            raise ValueError(
                "lock id %d out of range [0, %d)" % (lock_id, self.num_locks)
            )
        entry = self._ids.get(lock_id)
        if entry is not None:
            entry.write = entry.write or write
            entry.read = entry.read or read
            return entry
        entry = LockEntry(lock_id, write, read)
        bucket = self._buckets[self._bucket_of(lock_id)]
        # Insertion sort within the bucket (the paper's "inserted into a
        # corresponding position"); count comparisons for the ablation.
        position = len(bucket)
        for i, existing in enumerate(bucket):
            self.comparisons += 1
            if existing.lock_id > lock_id:
                position = i
                break
        bucket.insert(position, entry)
        self._ids[lock_id] = entry
        self.count += 1
        self._flat = None
        return entry

    def clear(self):
        """Reset to empty (transaction begin)."""
        for bucket in self._buckets:
            bucket.clear()
        self._ids.clear()
        self.count = 0
        self._flat = None

    def __len__(self):
        return self.count

    def __contains__(self, lock_id):
        return lock_id in self._ids

    def get(self, lock_id):
        """Entry for ``lock_id`` or None."""
        return self._ids.get(lock_id)

    def __iter__(self):
        """Iterate entries in globally sorted (ascending lock id) order."""
        flat = self._flat
        if flat is None:
            self._flat = flat = [
                entry for bucket in self._buckets for entry in bucket
            ]
        return iter(flat)

    def sorted_ids(self):
        """All lock ids in acquisition order (for tests)."""
        return [entry.lock_id for entry in self]


class EncounterOrderLog:
    """Unsorted lock log: acquisition in *encounter* order.

    This is what a lock-based STM uses when it does not sort — the layout of
    STM-HV-Backoff, which instead prevents intra-warp livelock with the
    two-phase warp backoff.  Same interface as :class:`LockLog` (duplicate
    merging, read-/write-bits), but iteration follows insertion order and no
    comparisons are spent.
    """

    __slots__ = ("num_locks", "_entries", "_ids", "comparisons")

    def __init__(self, num_locks):
        self.num_locks = num_locks
        self._entries = []
        self._ids = {}
        self.comparisons = 0

    def insert(self, lock_id, write=False, read=False):
        """Append ``lock_id`` (merging duplicates); returns the entry."""
        if not 0 <= lock_id < self.num_locks:
            raise ValueError(
                "lock id %d out of range [0, %d)" % (lock_id, self.num_locks)
            )
        entry = self._ids.get(lock_id)
        if entry is not None:
            entry.write = entry.write or write
            entry.read = entry.read or read
            return entry
        entry = LockEntry(lock_id, write, read)
        self._entries.append(entry)
        self._ids[lock_id] = entry
        return entry

    def clear(self):
        self._entries.clear()
        self._ids.clear()

    def get(self, lock_id):
        return self._ids.get(lock_id)

    def __contains__(self, lock_id):
        return lock_id in self._ids

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def sorted_ids(self):
        """Lock ids in acquisition (encounter) order."""
        return [entry.lock_id for entry in self._entries]
