"""The global clock (paper Algorithm 2).

A single global-memory word, read by every transaction at begin time
(its *snapshot*) and atomically incremented by every writing transaction at
commit time (Algorithm 3 line 83).  All device-side accesses go through a
:class:`~repro.gpu.thread.ThreadCtx` so they are costed and interleaved like
any other global access; the helpers here only hold the address.
"""


class GlobalClock:
    """Holder of the global clock's address in device memory."""

    __slots__ = ("addr",)

    def __init__(self, mem, name="g_clock"):
        self.addr = mem.alloc(1, name)

    def peek(self, mem):
        """Host-side read (tests / verifiers)."""
        return mem.read(self.addr)
