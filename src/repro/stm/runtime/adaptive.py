"""STM-HV-Adaptive: adaptive selection between lock-sorting and backoff.

The paper's section 4.2 closes with: "adaptive selection between lock
sorting and backoff may yield better overall performance.  We leave this as
future work."  This runtime is that future work, prototyped.

The observation behind it: encounter-time lock-sorting exists to break the
*intra-warp* lockstep symmetry of commit-time locking.  When a warp has at
most one transaction in flight (LB's one-router-per-block pattern), sorting
buys nothing — it only spends insertion comparisons — and when a warp is
full of transactions, sorting is what guarantees livelock freedom.  So each
transaction checks how many of its warp's lanes are currently inside
transactions and picks:

* **>= 2 live transactions in the warp** — the order-preserving sorted log
  (livelock-free parallel acquisition);
* **solo in the warp** — the raw encounter-order log: no sorting cost, and
  intra-warp livelock is impossible with one transactional lane.  Cross-warp
  retry symmetry is broken by the inherited abort jitter.

The choice is made per transaction at TXBegin, tracked in
``stats["adaptive_sorted"]`` / ``stats["adaptive_unsorted"]``.
"""

from repro.gpu.events import Phase
from repro.stm.locklog import EncounterOrderLog, LockLog
from repro.stm.runtime.locksorting import LockSortingRuntime, LockSortingTx


class HvAdaptiveRuntime(LockSortingRuntime):
    """Hierarchical validation with per-transaction sorting/backoff choice."""

    def __init__(self, device, **kwargs):
        kwargs.setdefault("use_vbv", True)
        # jitter covers the unsorted path's cross-warp retry symmetry
        kwargs.setdefault("abort_jitter", 4)
        super().__init__(device, **kwargs)

    @property
    def name(self):
        return "hv-adaptive"

    def make_thread(self, tc):
        return HvAdaptiveTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        sorted_picks = self.stats["adaptive_sorted"]
        total = sorted_picks + self.stats["adaptive_unsorted"]
        gauges["sorted_fraction"] = sorted_picks / total if total else 0.0
        return gauges


class HvAdaptiveTx(LockSortingTx):
    """Transaction that picks its lock-log organization at begin time."""

    _ACTIVE_KEY = "adaptive_tx_active"

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        self._sorted_log = self.locklog  # the LockLog built by the base
        self._unsorted_log = EncounterOrderLog(runtime.lock_table.num_locks)
        self._counted_active = False

    def tx_begin(self):
        tc = self.tc
        shared = tc.warp.shared
        active = shared.get(self._ACTIVE_KEY, 0)
        shared[self._ACTIVE_KEY] = active + 1
        self._counted_active = True
        # `active` counts warp-mates already inside transactions; any
        # company means lockstep commit collisions are possible and sorting
        # is required for livelock freedom.
        if active >= 1:
            self.locklog = self._sorted_log
            self.runtime.stats.add("adaptive_sorted")
        else:
            self.locklog = self._unsorted_log
            self.runtime.stats.add("adaptive_unsorted")
        yield from super().tx_begin()

    def _leave_tx(self):
        if self._counted_active:
            shared = self.tc.warp.shared
            shared[self._ACTIVE_KEY] = max(0, shared.get(self._ACTIVE_KEY, 1) - 1)
            self._counted_active = False

    def tx_commit(self):
        committed = yield from super().tx_commit()
        if committed:
            self._leave_tx()
        return committed

    def _abort(self, reason):
        self._leave_tx()
        return (yield from super()._abort(reason))
