"""STM-VBV: NOrec-like value-based validation under a single global
sequence lock (Dalessandro et al., PPoPP 2010; paper section 4.2).

The only global metadata is one sequence word: even = quiescent, odd = a
writer is committing.  Reads log (address, value) pairs; whenever the
sequence changes, the whole read-set is revalidated by value.  Commit
acquires the sequence lock with a CAS, writes back, and bumps the sequence
by two.

This is the scalability foil of the paper: with thousands of GPU threads the
single word is updated constantly and every commit serializes on it, so
STM-VBV "yields undesirable performance on workloads with a large number of
transactions" (Figure 2) and flattens in the thread-scaling study
(Figure 3).  It needs no livelock counter-measures — there is only one lock.
"""

from repro.gpu.events import Phase
from repro.stm.bloom import BloomFilter
from repro.stm.runtime.base import TmRuntime, TxThread
from repro.stm.rwset import LogCosting, ReadSet, WriteSet


class VbvRuntime(TmRuntime):
    """Runtime of the NOrec-like single-sequence-lock STM."""

    name = "vbv"

    def __init__(self, device, bloom_bits=64, coalesced_logs=True, record_history=False):
        super().__init__(device, record_history)
        self.seq_addr = device.mem.alloc(1, "g_seqlock")
        self.bloom_bits = bloom_bits
        self.coalesced_logs = coalesced_logs

    def make_thread(self, tc):
        return VbvTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        gauges["seqlock"] = self.mem.read(self.seq_addr)
        gauges["bloom_bits"] = self.bloom_bits
        return gauges


class VbvTx(TxThread):
    """Per-thread NOrec transaction."""

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        costing = LogCosting(coalesced=runtime.coalesced_logs)
        self.reads = ReadSet(costing)
        self.writes = WriteSet(costing)
        self.bloom = BloomFilter(bits=runtime.bloom_bits)
        self.snapshot = 0

    def read_entries(self):
        return self.reads.entries

    def write_entries(self):
        return self.writes.values

    # ------------------------------------------------------------------
    def tx_begin(self):
        tc = self.tc
        runtime = self.runtime
        tc.tx_window_begin()
        self.reads.clear()
        self.writes.clear()
        self.bloom.clear()
        self.is_opaque = True
        runtime.stats.add("begins")
        tc.local_op(Phase.INIT, count=3)
        # spin until the sequence is even (no writer mid-commit)
        while True:
            seq = tc.gread_l2(runtime.seq_addr, Phase.INIT)
            yield
            if seq & 1 == 0:
                break
            runtime.stats.add("begin_waits")
        self.snapshot = seq
        tc.fence(Phase.INIT)
        yield

    def _wait_even(self):
        """Spin until the sequence word is even; return it."""
        tc = self.tc
        runtime = self.runtime
        while True:
            seq = tc.gread_l2(runtime.seq_addr, Phase.CONSISTENCY)
            yield
            if seq & 1 == 0:
                return seq

    def _validate(self):
        """Value-based validation of the entire read-set (incremental
        validation made affordable by the sequence-lock filter)."""
        tc = self.tc
        self.runtime.stats.add("validations")
        for addr, logged in self.reads:
            current = tc.gread(addr, Phase.CONSISTENCY)
            yield
            if current != logged:
                return False
        return True

    def tx_read(self, addr):
        tc = self.tc
        runtime = self.runtime
        runtime.stats.add("tx_reads")
        if self.bloom.might_contain(addr):
            tc.local_op(Phase.BUFFERING)
            if addr in self.writes:
                return self.writes.get(addr)
        while True:
            value = tc.gread(addr, Phase.NATIVE)
            yield
            seq = tc.gread_l2(runtime.seq_addr, Phase.CONSISTENCY)
            yield
            if seq == self.snapshot:
                break
            # The world moved: wait out any committer, revalidate, extend
            # the snapshot, and re-read.
            if seq & 1:
                seq = yield from self._wait_even()
            consistent = yield from self._validate()
            consistent = self._filter_validation("read", consistent)
            if not consistent:
                self.is_opaque = False
                runtime.stats.add("postvalidation_failures")
                return value
            self.snapshot = seq
        self._note_real_read(addr)
        self.reads.append(tc, addr, value, Phase.BUFFERING)
        return value

    def tx_write(self, addr, value):
        tc = self.tc
        self.runtime.stats.add("tx_writes")
        self.writes.put(tc, addr, value, Phase.BUFFERING)
        self.bloom.add(addr)
        return
        yield  # pragma: no cover - generator marker

    def tx_commit(self):
        tc = self.tc
        runtime = self.runtime
        if not self.writes:
            runtime.note_commit(self, version=self.snapshot // 2)
            tc.tx_window_commit()
            return True
            yield  # pragma: no cover - generator marker

        while True:
            observed = tc.atomic_cas(
                runtime.seq_addr, self.snapshot, self.snapshot + 1, Phase.LOCKS
            )
            yield
            if observed == self.snapshot:
                break
            runtime.stats.add("seqlock_cas_failures")
            seq = observed
            if seq & 1:
                seq = yield from self._wait_even()
            consistent = yield from self._validate()
            consistent = self._filter_validation("commit", consistent)
            if not consistent:
                return (yield from self._abort("validation"))
            self.snapshot = seq

        # Sequence lock held: write back and release.
        tc.fence(Phase.COMMIT)
        yield
        for addr, value in self.writes.items():
            tc.gwrite(addr, value, Phase.COMMIT)
            yield
        tc.fence(Phase.COMMIT)
        yield
        tc.gwrite(runtime.seq_addr, self.snapshot + 2, Phase.LOCKS)
        yield
        runtime.note_commit(self, version=(self.snapshot + 2) // 2)
        tc.tx_window_commit()
        return True

    def _abort(self, reason):
        self.runtime.note_abort(reason, tx=self)
        self.tc.tx_window_abort()
        self.is_opaque = True
        return False
        yield  # pragma: no cover - generator marker

    def tx_abort(self):
        yield from self._abort("opacity")
