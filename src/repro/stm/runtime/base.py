"""Common interface of every TM runtime and baseline.

A :class:`TmRuntime` owns the global metadata of one STM instance (lock
table, clock, statistics) and hands every simulated thread a
:class:`TxThread` via :meth:`TmRuntime.attach` (passed as the ``attach``
callback of :meth:`repro.gpu.Device.launch`, which installs it as
``tc.stm``).

A :class:`TxThread` exposes the paper's programming interface as generator
methods driven with ``yield from``:

* ``tx_begin()``
* ``value = yield from tx_read(addr)``
* ``yield from tx_write(addr, value)``
* ``committed = yield from tx_commit()``
* ``yield from tx_abort()`` — explicit abort after an opacity violation
  (the Figure 1 ``isOpaque`` pattern)

``is_opaque`` mirrors the paper's per-transaction opacity flag: a read that
fails post-validation clears it, and the program must break out of the
transaction body and abort (GPU SIMT stacks are not software-manageable, so
GPU-STM cannot longjmp out of a transaction the way CPU STMs do).

When ``record_history`` is enabled the runtime logs every committed
transaction's read/write sets and commit timestamp, which the strict
serializability oracle (:mod:`repro.stm.oracle`) replays in tests.
"""

from repro.common.stats import Counters


class CommitRecord:
    """History entry of one committed transaction (oracle input)."""

    __slots__ = ("tid", "version", "reads", "writes")

    def __init__(self, tid, version, reads, writes):
        self.tid = tid
        self.version = version
        self.reads = reads
        self.writes = writes

    def __repr__(self):
        return "CommitRecord(tid=%d, version=%s, reads=%d, writes=%d)" % (
            self.tid,
            self.version,
            len(self.reads),
            len(self.writes),
        )


class TmRuntime:
    """Base class of all TM runtimes."""

    #: registry name; subclasses override
    name = "abstract"
    #: True when transactions of this runtime execute per thread (the paper's
    #: distinguishing feature vs. EGPGV's per-thread-block transactions)
    per_thread_transactions = True

    def __init__(self, device, record_history=False):
        self.device = device
        self.mem = device.mem
        self.config = device.config
        self.stats = Counters()
        self.record_history = record_history
        self.history = []
        self.threads = []
        # optional TxTracer (repro.stm.trace): commit/abort event stream
        self.tracer = None
        # optional StmSanitizer (repro.faults.sanitizer): online invariant
        # checker fed the same commit/abort events plus read-barrier probes
        self.sanitizer = None

    def attach(self, tc):
        """Install this runtime's per-thread transaction state on ``tc``.

        Pass ``runtime.attach`` as the ``attach=`` argument of
        ``Device.launch``.
        """
        tc.stm = self.make_thread(tc)
        self.threads.append(tc.stm)

    def make_thread(self, tc):
        """Create the per-thread :class:`TxThread`; subclasses implement."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Statistics helpers
    # ------------------------------------------------------------------
    def note_commit(self, tx, version=None):
        self.stats.add("commits")
        if self.tracer is not None:
            self.tracer.on_commit(tx, version)
        if self.sanitizer is not None:
            self.sanitizer.on_commit(tx, version)
        if self.record_history:
            self.history.append(
                CommitRecord(
                    tid=tx.tc.tid,
                    version=version,
                    reads=list(tx.read_entries()),
                    writes=dict(tx.write_entries()),
                )
            )

    def note_abort(self, reason, tx=None):
        self.stats.add("aborts")
        self.stats.add("aborts.%s" % reason)
        if self.tracer is not None and tx is not None:
            self.tracer.on_abort(tx, reason)
        if self.sanitizer is not None and tx is not None:
            self.sanitizer.on_abort(tx, reason)

    def abort_rate(self):
        """Aborted attempts / started attempts."""
        commits = self.stats["commits"]
        aborts = self.stats["aborts"]
        attempts = commits + aborts
        return aborts / attempts if attempts else 0.0

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def metric_namespace(self):
        """Root of this runtime's metric names, e.g. ``stm.hv_sorting``."""
        return "stm.%s" % self.name.replace("-", "_")

    def metric_gauges(self):
        """Point-in-time values published next to the counters.

        Subclasses extend the base dict with their variant-specific state
        (clock value, lock-table occupancy, sequence locks, static
        capacities, ...); keys are relative to :meth:`metric_namespace`.
        ``abort_rate`` is the derived point-in-time ratio the service
        layer's SLO dashboards read (the raw ``commits``/``aborts``
        counters are published separately by :meth:`publish_metrics`);
        rounded to a fixed 6 decimals so artifacts diff clean.
        """
        return {
            "threads": len(self.threads),
            "abort_rate": round(self.abort_rate(), 6),
        }

    def publish_metrics(self, registry):
        """Report this runtime's statistics into a metric registry.

        The counter bag lands under the variant namespace with dashes
        normalized (``aborts.lock_conflict`` of ``hv-sorting`` becomes
        ``stm.hv_sorting.aborts.lock_conflict``); :meth:`metric_gauges`
        values are published as gauges.  Returns the namespace.
        """
        namespace = self.metric_namespace()
        registry.absorb_counters(namespace, self.stats)
        for name, value in sorted(self.metric_gauges().items()):
            registry.gauge("%s.%s" % (namespace, name)).set(value)
        return namespace


class TxThread:
    """Per-thread transactional state; subclasses implement the barriers."""

    def __init__(self, runtime, tc):
        self.runtime = runtime
        self.tc = tc
        self.is_opaque = True

    # Subclasses must provide generator methods:
    #   tx_begin, tx_read, tx_write, tx_commit, tx_abort
    # and the history accessors read_entries() / write_entries().

    def read_entries(self):
        """Iterable of (addr, value) transactional reads (for history)."""
        return ()

    def write_entries(self):
        """Iterable of (addr, value) speculative writes (for history)."""
        return ()

    def _note_real_read(self, addr):
        """Tell the sanitizer a *real* global read served this tx_read.

        Write-buffering runtimes call this right after the global read of
        their read barrier (never on the write-set fast path); the
        sanitizer flags reads that should have been served from the
        transaction's own write buffer.  No-op without a sanitizer.
        """
        sanitizer = self.runtime.sanitizer
        if sanitizer is not None:
            sanitizer.on_tx_read(self, addr)

    def _filter_validation(self, stage, verdict):
        """The byzantine validation seam: every read-set validation
        verdict (TBV/VBV, at ``stage`` "read", "precommit" or "commit")
        passes through here before the runtime acts on it.  An armed
        :class:`~repro.faults.byzantine.ByzantineInjector` may flip a
        failing verdict for a lying lane; crash/protocol injectors and
        disarmed devices leave it untouched.  Passing verdicts short-
        circuit — honest fast paths pay one truth test.
        """
        if verdict:
            return verdict
        injector = self.runtime.device.fault_injector
        if injector is None:
            return verdict
        return injector.filter_validation(self, stage, verdict)
