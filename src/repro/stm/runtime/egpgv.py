"""STM-EGPGV: the blocking, per-thread-*block* STM baseline
(Cederman, Tsigas & Chaudhry, EGPGV 2010; paper sections 4.2 and 5).

The defining limitation: transactions execute at thread-block granularity,
not per thread.  We model that by serializing transactional execution within
each block — at any instant at most one logical transaction per block is
live, so device-wide transaction concurrency equals the number of blocks,
which is why Figure 2 shows STM-EGPGV constrained and Figure 3 shows it
flat.

The protocol itself is a blocking two-phase-locking STM: stripes are locked
at *encounter* time (reads and writes) and held to commit; writes are
buffered and applied under the locks.  Conflicting acquisitions spin briefly
and then abort-and-retry, so crossed orders across blocks cannot deadlock.

Its metadata is statically sized (the original allocates fixed per-block
logs at startup): launches with more blocks than ``max_blocks``, blocks
wider than ``max_threads_per_block``, or transactions touching more than
``max_accesses`` stripes raise :class:`EgpgvCapacityError` — reproducing the
paper's note that "STM-EGPGV crashes at relatively small numbers of threads
because it does not support per-thread transactions".
"""

from repro.common.rng import Xorshift32, thread_seed
from repro.gpu.events import Phase
from repro.stm.clock import GlobalClock
from repro.stm.errors import EgpgvCapacityError
from repro.stm.runtime.base import TmRuntime, TxThread
from repro.stm.rwset import LogCosting, ReadSet, WriteSet
from repro.stm.versionlock import GlobalLockTable


class EgpgvRuntime(TmRuntime):
    """Runtime of the per-thread-block blocking STM."""

    name = "egpgv"
    per_thread_transactions = False

    def __init__(
        self,
        device,
        num_locks=1024,
        max_blocks=64,
        max_threads_per_block=128,
        max_accesses=256,
        max_lock_attempts=64,
        object_overhead=120,
        coalesced_logs=True,
        record_history=False,
    ):
        super().__init__(device, record_history)
        self.lock_table = GlobalLockTable(device.mem, num_locks, name="egpgv_locks")
        self.clock = GlobalClock(device.mem, name="egpgv_clock")
        # One device-resident slot flag per block: lanes waiting for their
        # block's transaction slot poll it in global memory, paying real
        # traffic for the serialization (this is what makes EGPGV's limited
        # concurrency show up as limited performance).
        self.block_flags = device.mem.alloc(max_blocks, "egpgv_block_flags")
        self.max_blocks = max_blocks
        self.max_threads_per_block = max_threads_per_block
        self.max_accesses = max_accesses
        self.max_lock_attempts = max_lock_attempts
        # Cederman's STM is object-based: opening an object copies it and
        # registers it with the block-wide transaction descriptor.  This
        # models that fixed management cost at begin and commit.
        self.object_overhead = object_overhead
        self.coalesced_logs = coalesced_logs

    def attach(self, tc):
        if tc.block.index >= self.max_blocks:
            raise EgpgvCapacityError(
                "launch uses block %d but STM-EGPGV metadata is statically "
                "sized for %d blocks" % (tc.block.index, self.max_blocks)
            )
        if tc.block.block_threads > self.max_threads_per_block:
            raise EgpgvCapacityError(
                "block width %d exceeds STM-EGPGV's static per-block "
                "capacity of %d threads"
                % (tc.block.block_threads, self.max_threads_per_block)
            )
        tc.stm = self.make_thread(tc)
        self.threads.append(tc.stm)

    def make_thread(self, tc):
        return EgpgvTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        gauges["clock"] = self.clock.peek(self.mem)
        gauges["max_blocks"] = self.max_blocks
        gauges["max_threads_per_block"] = self.max_threads_per_block
        gauges["max_accesses"] = self.max_accesses
        for key, value in self.lock_table.metrics_summary().items():
            gauges["lock_table.%s" % key] = value
        return gauges


class EgpgvTx(TxThread):
    """One logical transaction, serialized with its block-mates."""

    _QUEUE_KEY = "egpgv_block_queue"

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        costing = LogCosting(coalesced=runtime.coalesced_logs)
        self.reads = ReadSet(costing)
        self.writes = WriteSet(costing)
        self._held = set()
        self._queued = False
        # Cederman's blocking STM retries conflicts under randomized
        # exponential backoff; we use a deterministic per-thread stream so
        # simulations stay reproducible while symmetric cross-block retry
        # patterns still break up.
        self._backoff_rng = Xorshift32(thread_seed(0xE69, tc.tid))
        self._consecutive_aborts = 0

    def read_entries(self):
        return self.reads.entries

    def write_entries(self):
        return self.writes.values

    # ------------------------------------------------------------------
    def tx_begin(self):
        """Wait for the block's transaction slot, then start."""
        tc = self.tc
        runtime = self.runtime
        tc.tx_window_begin()
        self.reads.clear()
        self.writes.clear()
        self._held.clear()
        self.is_opaque = True
        runtime.stats.add("begins")
        if self._consecutive_aborts:
            exponent = min(self._consecutive_aborts, 6)
            delay = self._backoff_rng.randrange(1 << exponent) + 1
            for _ in range(delay):
                tc.work(1, Phase.INIT)
                yield
        if not self._queued:
            queue = tc.block.shared.setdefault(self._QUEUE_KEY, [])
            queue.append(tc.tid)
            self._queued = True
        queue = tc.block.shared[self._QUEUE_KEY]
        flag_addr = runtime.block_flags + tc.block.index
        while queue[0] != tc.tid:
            # poll the block's slot flag while block-mates transact
            tc.gread_l2(flag_addr, Phase.INIT)
            yield
        tc.work(runtime.object_overhead, Phase.INIT)
        yield
        tc.local_op(Phase.INIT, count=2)

    def _check_capacity(self):
        if len(self._held) > self.runtime.max_accesses:
            raise EgpgvCapacityError(
                "transaction touched %d stripes; STM-EGPGV's static logs "
                "hold %d" % (len(self._held), self.runtime.max_accesses)
            )

    def _acquire(self, addr):
        """Encounter-time blocking acquisition of the stripe lock."""
        tc = self.tc
        runtime = self.runtime
        lock_id = runtime.lock_table.index_of(addr)
        if lock_id in self._held:
            return True
        lock_addr = runtime.lock_table.lock_addr(lock_id)
        attempts = 0
        while True:
            observed = tc.atomic_cas(lock_addr, 0, 1, Phase.LOCKS)
            yield
            if observed == 0:
                self._held.add(lock_id)
                self._check_capacity()
                return True
            runtime.stats.add("lock_acquire_failures")
            attempts += 1
            if attempts >= runtime.max_lock_attempts:
                return False

    def tx_read(self, addr):
        tc = self.tc
        runtime = self.runtime
        runtime.stats.add("tx_reads")
        if addr in self.writes:
            tc.local_op(Phase.BUFFERING)
            return self.writes.get(addr)
        acquired = yield from self._acquire(addr)
        if not acquired:
            self.is_opaque = False  # blocked too long: abort-and-retry
            return 0
        value = tc.gread(addr, Phase.NATIVE)
        yield
        self._note_real_read(addr)
        self.reads.append(tc, addr, value, Phase.BUFFERING)
        return value

    def tx_write(self, addr, value):
        tc = self.tc
        runtime = self.runtime
        runtime.stats.add("tx_writes")
        acquired = yield from self._acquire(addr)
        if not acquired:
            self.is_opaque = False
            return
        self.writes.put(tc, addr, value, Phase.BUFFERING)

    def _release_all(self):
        tc = self.tc
        lock_table = self.runtime.lock_table
        for lock_id in self._held:
            tc.gwrite(lock_table.lock_addr(lock_id), 0, Phase.LOCKS)
            yield
        self._held.clear()

    def _leave_queue(self):
        queue = self.tc.block.shared[self._QUEUE_KEY]
        queue.pop(0)
        self._queued = False

    def tx_commit(self):
        tc = self.tc
        runtime = self.runtime
        tc.work(runtime.object_overhead, Phase.COMMIT)
        yield
        tc.fence(Phase.COMMIT)
        yield
        for addr, value in self.writes.items():
            tc.gwrite(addr, value, Phase.COMMIT)
            yield
        tc.fence(Phase.COMMIT)
        yield
        version = tc.atomic_inc(runtime.clock.addr, Phase.COMMIT) + 1
        yield
        yield from self._release_all()
        self._leave_queue()
        self._consecutive_aborts = 0
        runtime.note_commit(self, version=version)
        tc.tx_window_commit()
        return True

    def tx_abort(self):
        runtime = self.runtime
        yield from self._release_all()
        self._leave_queue()
        self._consecutive_aborts += 1
        runtime.note_abort("blocking_conflict", tx=self)
        self.tc.tx_window_abort()
        self.is_opaque = True
