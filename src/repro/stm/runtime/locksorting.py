"""The GPU-STM core: Algorithm 3 of the paper.

This module implements the word- and lock-based STM with:

* commit-time locking over an **encounter-time sorted lock-log** (livelock
  freedom under lockstep execution, section 3.1);
* **hierarchical validation** — timestamp-based validation (TBV) against the
  global version locks with value-based validation (VBV) as the fallback
  that filters TBV's false conflicts (``use_vbv=True``, the *STM-HV-Sorting*
  variant), or TBV alone (``use_vbv=False``, *STM-TBV-Sorting*);
* the paper's read barrier with post-validation (Algorithm 3 lines 21-35 and
  6-20), write buffering with a Bloom-filtered write-set (lines 36-38), and
  the full commit protocol ``GetLocksAndTBV`` / ``VBV`` / ``ReleaseLocks`` /
  ``ReleaseAndUpdateLocks`` (lines 43-85);
* locking of **all read and write locations** during commit — the paper
  explains (end of section 3.2.2) that leaving read locations unlocked lets
  two lockstep transactions with crossed read/write sets abort each other
  forever.

All methods are generators; every globally-visible operation is followed by
a ``yield`` (one warp step), so lock acquisitions of lanes in one warp
really do collide in the same step — the behaviour the sorting exists for.
"""

from repro.common.rng import Xorshift32, thread_seed
from repro.gpu.events import Phase
from repro.stm.bloom import BloomFilter
from repro.stm.clock import GlobalClock
from repro.stm.locklog import LockLog
from repro.stm.runtime.base import TmRuntime, TxThread
from repro.stm.rwset import LogCosting, ReadSet, WriteSet
from repro.stm.versionlock import GlobalLockTable


class LockSortingRuntime(TmRuntime):
    """Runtime for STM-HV-Sorting (``use_vbv=True``) and STM-TBV-Sorting."""

    def __init__(
        self,
        device,
        num_locks=1024,
        stripe_words=1,
        use_vbv=True,
        lock_log_buckets=16,
        bloom_bits=64,
        max_lock_attempts=16,
        precommit_vbv=False,
        coalesced_logs=True,
        record_history=False,
        abort_jitter=0,
    ):
        super().__init__(device, record_history)
        self.lock_table = GlobalLockTable(device.mem, num_locks, stripe_words)
        self.clock = GlobalClock(device.mem)
        self.use_vbv = use_vbv
        self.lock_log_buckets = lock_log_buckets
        self.bloom_bits = bloom_bits
        self.max_lock_attempts = max_lock_attempts
        self.precommit_vbv = precommit_vbv
        self.coalesced_logs = coalesced_logs
        # Post-abort restart jitter (steps).  Zero for the sorted variants:
        # the global lock order makes livelock impossible by construction.
        # Non-sorted strategies (STM-HV-Backoff) set this to break symmetric
        # cross-warp retry patterns, standing in for the timing noise of
        # real hardware.
        self.abort_jitter = abort_jitter

    @property
    def name(self):
        return "hv-sorting" if self.use_vbv else "tbv-sorting"

    def make_thread(self, tc):
        return LockSortingTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        gauges["clock"] = self.clock.peek(self.mem)
        gauges["use_vbv"] = int(self.use_vbv)
        gauges["max_lock_attempts"] = self.max_lock_attempts
        gauges["abort_jitter"] = self.abort_jitter
        for key, value in self.lock_table.metrics_summary().items():
            gauges["lock_table.%s" % key] = value
        return gauges


class LockSortingTx(TxThread):
    """Per-thread transaction state and barriers of Algorithm 3."""

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        costing = LogCosting(coalesced=runtime.coalesced_logs)
        self.reads = ReadSet(costing)
        self.writes = WriteSet(costing)
        self.bloom = BloomFilter(bits=runtime.bloom_bits)
        self.locklog = LockLog(
            runtime.lock_table.num_locks, num_buckets=runtime.lock_log_buckets
        )
        self.snapshot = 0
        self.pass_tbv = True
        # version-lock words observed when acquiring, for exact release
        self._held = {}
        self._failed_lock = None
        self._backoff_rng = Xorshift32(thread_seed(0x57A, tc.tid))
        self._consecutive_aborts = 0

    # ------------------------------------------------------------------
    # History accessors (oracle input)
    # ------------------------------------------------------------------
    def read_entries(self):
        return self.reads.entries

    def write_entries(self):
        return self.writes.values

    # ------------------------------------------------------------------
    # TXBegin (Algorithm 3 lines 1-5)
    # ------------------------------------------------------------------
    def tx_begin(self):
        tc = self.tc
        runtime = self.runtime
        tc.tx_window_begin()
        self.reads.clear()
        self.writes.clear()
        self.bloom.clear()
        self.locklog.clear()
        self._held.clear()
        self.is_opaque = True
        self.pass_tbv = True
        runtime.stats.add("begins")
        if runtime.abort_jitter and self._consecutive_aborts:
            exponent = min(self._consecutive_aborts, 6)
            delay = self._backoff_rng.randrange(runtime.abort_jitter << exponent) + 1
            for _ in range(delay):
                tc.work(1, Phase.INIT)
                yield
        tc.local_op(Phase.INIT, count=4)
        self.snapshot = tc.gread_l2(runtime.clock.addr, Phase.INIT)
        yield
        tc.fence(Phase.INIT)
        yield

    # ------------------------------------------------------------------
    # Post-validation (Algorithm 3 lines 6-20)
    # ------------------------------------------------------------------
    def _post_validation(self, version):
        """Value-based validation plus version re-check, restarting while
        concurrent committers interfere.  Returns consistency of the
        transaction at the final ``self.snapshot``."""
        tc = self.tc
        runtime = self.runtime
        lock_addr_for = runtime.lock_table.lock_addr_for
        gread = tc.gread
        gread_l2 = tc.gread_l2
        consistency_phase = Phase.CONSISTENCY
        self.snapshot = version
        while True:
            for addr, logged in self.reads:
                current = gread(addr, consistency_phase)
                yield
                if current != logged:
                    return False
            tc.fence(Phase.CONSISTENCY)
            yield
            restart = False
            for addr, _logged in self.reads:
                word = gread_l2(lock_addr_for(addr), consistency_phase)
                yield
                # inlined versionlock.is_locked / version_of
                observed_version = word >> 1
                if word & 1 or observed_version > self.snapshot:
                    self.snapshot = observed_version
                    restart = True
                    break
            if not restart:
                return True
            runtime.stats.add("postvalidation_restarts")

    # ------------------------------------------------------------------
    # TXRead (Algorithm 3 lines 21-35)
    # ------------------------------------------------------------------
    def tx_read(self, addr):
        tc = self.tc
        runtime = self.runtime
        runtime.stats.add("tx_reads")
        # write-set hit? (Bloom filter fast path, line 22)
        if self.bloom.might_contain(addr):
            tc.local_op(Phase.BUFFERING)
            if addr in self.writes:
                return self.writes.get(addr)
        value = tc.gread(addr, Phase.NATIVE)
        yield
        self._note_real_read(addr)
        self.reads.append(tc, addr, value, Phase.BUFFERING)
        tc.fence(Phase.CONSISTENCY)
        yield
        # consistency checking (lines 27-33): wait out committing lockers,
        # then compare the stripe version against the snapshot.  The lock
        # address is loop-invariant and the wait counter batches into a
        # local (flushed once): the spin body is the contended-read hot
        # path.  ``word & 1`` is the inlined lock bit (versionlock.is_locked).
        lock_addr = runtime.lock_table.lock_addr_for(addr)
        gread_l2 = tc.gread_l2
        consistency_phase = Phase.CONSISTENCY
        waits = 0
        while True:
            word = gread_l2(lock_addr, consistency_phase)
            yield
            if not word & 1:
                break
            waits += 1
        if waits:
            runtime.stats.add("read_waits_on_lock", waits)
        version = word >> 1
        if version > self.snapshot:
            if runtime.use_vbv:
                consistent = yield from self._post_validation(version)
                if consistent:
                    runtime.stats.add("hv_read_saves")
            else:
                # Pure TBV: a stale snapshot is a conflict, full stop.
                consistent = False
            consistent = self._filter_validation("read", consistent)
            if not consistent:
                self.is_opaque = False  # tx should be aborted (line 33)
                runtime.stats.add("postvalidation_failures")
        self.locklog.insert(runtime.lock_table.index_of(addr), read=True)
        tc.local_op(Phase.BUFFERING)
        return value

    # ------------------------------------------------------------------
    # TXWrite (Algorithm 3 lines 36-38)
    # ------------------------------------------------------------------
    def tx_write(self, addr, value):
        tc = self.tc
        runtime = self.runtime
        runtime.stats.add("tx_writes")
        self.writes.put(tc, addr, value, Phase.BUFFERING)
        self.bloom.add(addr)
        self.locklog.insert(runtime.lock_table.index_of(addr), write=True)
        tc.local_op(Phase.BUFFERING)
        return
        yield  # pragma: no cover - generator marker (no device ops needed)

    # ------------------------------------------------------------------
    # Commit machinery (Algorithm 3 lines 43-85)
    # ------------------------------------------------------------------
    def _vbv(self, phase):
        """Value-based validation over the whole read-set (lines 62-66)."""
        gread = self.tc.gread
        for addr, logged in self.reads:
            current = gread(addr, phase)
            yield
            if current != logged:
                return False
        return True

    def _get_locks_and_tbv(self):
        """Acquire all logged locks in sorted order; TBV read entries
        (lines 43-52).  Returns True when every lock was acquired."""
        tc = self.tc
        runtime = self.runtime
        lock_base = runtime.lock_table.base
        atomic_or = tc.atomic_or
        held = self._held
        snapshot = self.snapshot
        locks_phase = Phase.LOCKS
        self._failed_lock = None
        for entry in self.locklog:
            lock_id = entry.lock_id
            # lock_table.lock_addr and versionlock.is_locked/version_of
            # inlined (base + id, bit 0, >> 1): this loop runs once per
            # logged lock per acquisition attempt
            word = atomic_or(lock_base + lock_id, 1, locks_phase)
            yield
            if word & 1:
                runtime.stats.add("lock_acquire_failures")
                self._failed_lock = lock_id
                yield from self._release_locks()
                return False
            held[lock_id] = word
            if entry.read and word >> 1 > snapshot:
                self.pass_tbv = False
        return True

    def _wait_lock_free(self, lock_id):
        """Spin until global lock ``lock_id`` is released.  Bounded: locks
        are only held by committing transactions, which finish."""
        gread_l2 = self.tc.gread_l2
        lock_addr = self.runtime.lock_table.lock_addr(lock_id)
        locks_phase = Phase.LOCKS
        while True:
            word = gread_l2(lock_addr, locks_phase)
            yield
            if not word & 1:  # inlined versionlock.is_locked
                return

    def _acquire_phase(self):
        """Lock-acquisition strategy: sorted acquisition with bounded
        retries (livelock-free by the global lock order).  Returns True once
        all locks are held; aborts the transaction and returns False after
        ``max_lock_attempts`` failures.  Subclasses override this to model
        other strategies (e.g. the warp backoff of STM-HV-Backoff)."""
        runtime = self.runtime
        attempts = 0
        while True:
            if runtime.use_vbv and runtime.precommit_vbv:
                # Optional pre-locking VBV (line 71): filter doomed
                # transactions before they contend for locks.
                valid = yield from self._vbv(Phase.COMMIT)
                valid = self._filter_validation("precommit", valid)
                if not valid:
                    return (yield from self._abort("validation"))
            acquired = yield from self._get_locks_and_tbv()
            if acquired:
                return True
            attempts += 1
            if attempts >= runtime.max_lock_attempts:
                # Practical implementations abort after several lock
                # acquisition attempts to reduce contention (section 4.3).
                return (yield from self._abort("lock_contention"))
            # Retry after the holder — typically a committing warp-mate —
            # finishes: locks are only held during commit, so the wait is
            # bounded.
            yield from self._wait_lock_free(self._failed_lock)

    def _release_locks(self):
        """Release every held lock, restoring its pre-acquisition word
        (lines 53-55)."""
        gwrite = self.tc.gwrite
        lock_base = self.runtime.lock_table.base
        locks_phase = Phase.LOCKS
        for lock_id, word in self._held.items():
            gwrite(lock_base + lock_id, word, locks_phase)
            yield
        self._held.clear()

    def _release_and_update_locks(self, version):
        """Unlock; stripes written get the new version (lines 56-61)."""
        gwrite = self.tc.gwrite
        lock_base = self.runtime.lock_table.base
        held = self._held
        new_version_word = version << 1
        locks_phase = Phase.LOCKS
        for entry in self.locklog:
            if entry.write:
                new_word = new_version_word
            else:
                new_word = held[entry.lock_id]
            gwrite(lock_base + entry.lock_id, new_word, locks_phase)
            yield
        held.clear()

    def tx_commit(self):
        """TXCommit (lines 67-85); returns True when the transaction
        committed, False when it aborted (caller restarts it)."""
        tc = self.tc
        runtime = self.runtime
        if not self.writes:
            # Read-only: linearizes at the last read (line 68-69).  The
            # snapshot names the point where its reads were last verified.
            runtime.note_commit(self, version=self.snapshot)
            tc.tx_window_commit()
            return True
            yield  # pragma: no cover - generator marker

        acquired = yield from self._acquire_phase()
        if not acquired:
            return False  # already aborted inside the strategy

        if not self.pass_tbv:
            if runtime.use_vbv:
                # Hierarchical validation: a stale timestamp is only a
                # *candidate* conflict; VBV confirms or refutes it (line 76).
                valid = yield from self._vbv(Phase.COMMIT)
            else:
                # Pure TBV: a stale timestamp IS a conflict.
                valid = False
            valid = self._filter_validation("commit", valid)
            if valid:
                runtime.stats.add("hv_commit_saves")
            else:
                yield from self._release_locks()
                return (yield from self._abort("validation"))

        tc.fence(Phase.COMMIT)
        yield
        gwrite = tc.gwrite
        commit_phase = Phase.COMMIT
        for addr, value in self.writes.items():
            gwrite(addr, value, commit_phase)
            yield
        tc.fence(Phase.COMMIT)
        yield
        version = tc.atomic_inc(runtime.clock.addr, Phase.COMMIT) + 1
        yield
        yield from self._release_and_update_locks(version)
        self._consecutive_aborts = 0
        runtime.note_commit(self, version=version)
        tc.tx_window_commit()
        return True

    def _abort(self, reason):
        """Common abort path: count, reclassify cycles, reset opacity."""
        runtime = self.runtime
        runtime.note_abort(reason, tx=self)
        self._consecutive_aborts += 1
        self.tc.tx_window_abort()
        self.is_opaque = True
        return False
        yield  # pragma: no cover - generator marker

    def tx_abort(self):
        """Explicit abort after the program saw ``is_opaque == False``
        (the Figure 1 pattern)."""
        yield from self._abort("opacity")
