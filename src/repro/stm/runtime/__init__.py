"""STM runtime implementations: the paper's evaluated variants.

* :mod:`locksorting` — the GPU-STM core (Algorithm 3): hierarchical
  validation + encounter-time lock-sorting (``hv-sorting``) and its
  timestamp-only sibling (``tbv-sorting``).
* :mod:`hv_backoff` — hierarchical validation with the GPU-specific
  two-phase warp backoff instead of sorting (``hv-backoff``).
* :mod:`vbv` — NOrec-like value-based validation under a single global
  sequence lock (``vbv``).
* :mod:`optimized` — adaptive HV/TBV selection (``optimized``).
* :mod:`egpgv` — the per-thread-block blocking STM baseline (``egpgv``).
* :mod:`cgl` — coarse-grained locking, the speedup denominator (``cgl``).
"""
