"""STM-HV-Backoff: hierarchical validation with a GPU-specific backoff
instead of encounter-time lock-sorting (paper section 4.2).

Classic exponential backoff cannot work on GPUs — lanes of a warp execute in
lockstep and cannot wait for *different* random delays.  The paper's
GPU-specific alternative, reproduced here:

1. **Parallel first attempt** — every committing lane of the warp tries to
   acquire its locks (in raw encounter order, no sorting) simultaneously.
2. **Serialized retries** — lanes that failed enqueue on a warp-local queue
   and retry strictly one at a time while the rest of the queue idles;
   winners of phase 1 meanwhile validate and write back in parallel.

Serializing the retries removes intra-warp livelock (no two lanes of a warp
re-attempt in the same step), at the price of a commit-time bottleneck —
which is exactly why Figure 2 shows STM-HV-Sorting beating STM-HV-Backoff on
the low-conflict workloads.
"""

from repro.gpu.events import Phase
from repro.stm.locklog import EncounterOrderLog
from repro.stm.runtime.locksorting import LockSortingRuntime, LockSortingTx


class HvBackoffRuntime(LockSortingRuntime):
    """Runtime of STM-HV-Backoff (always hierarchical validation)."""

    def __init__(self, device, **kwargs):
        kwargs.setdefault("use_vbv", True)
        kwargs.setdefault("abort_jitter", 4)
        super().__init__(device, **kwargs)

    @property
    def name(self):
        return "hv-backoff"

    def make_thread(self, tc):
        return HvBackoffTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        # fraction of attempts that escalated to the queueing phase: the
        # contention signal this variant's two-phase backoff responds to
        attempts = self.stats["begins"]
        entries = self.stats["backoff_phase2_entries"]
        gauges["phase2_fraction"] = entries / attempts if attempts else 0.0
        return gauges


class HvBackoffTx(LockSortingTx):
    """Transaction with encounter-order locks and two-phase warp backoff."""

    _QUEUE_KEY = "hv_backoff_queue"

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        # Replace the sorted log with a raw encounter-order log.
        self.locklog = EncounterOrderLog(runtime.lock_table.num_locks)

    def _acquire_phase(self):
        tc = self.tc
        runtime = self.runtime

        # Phase 1: all lanes of the warp attempt in parallel (lockstep).
        acquired = yield from self._get_locks_and_tbv()
        if acquired:
            return True
        runtime.stats.add("backoff_phase2_entries")

        # Phase 2: failed lanes retry serially within the warp.
        queue = tc.warp.shared.setdefault(self._QUEUE_KEY, [])
        queue.append(tc.lane_id)
        while queue[0] != tc.lane_id:
            tc.work(1, Phase.LOCKS)  # inactive lane waiting its turn
            yield
        try:
            attempts = 1
            while True:
                acquired = yield from self._get_locks_and_tbv()
                if acquired:
                    return True
                attempts += 1
                if attempts >= runtime.max_lock_attempts:
                    return (yield from self._abort("lock_contention"))
                # Wait for the conflicting holder (a parallel-phase winner
                # or a committer in another warp) to release.
                yield from self._wait_lock_free(self._failed_lock)
        finally:
            queue.pop(0)
