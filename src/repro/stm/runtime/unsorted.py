"""The unsorted strawman: GPU-STM with encounter-time lock-sorting removed.

This runtime exists to *demonstrate the problem* the paper's section 2.2
describes and section 3.1 solves: commit-time locking in raw encounter
order, with unbounded symmetric retries and no backoff.  Two lanes of one
warp whose transactions touch the same two stripes in opposite orders fail
their second acquisition in the same lockstep step, release, and retry
forever — a livelock the watchdog reports as
:class:`~repro.gpu.errors.ProgressError`.

Used by the livelock tests and the lock-sorting ablation benchmark.  Never
use it for real work.
"""

from repro.stm.locklog import EncounterOrderLog
from repro.stm.runtime.locksorting import LockSortingRuntime, LockSortingTx


class UnsortedNoBackoffTx(LockSortingTx):
    """GPU-STM transaction with the sorting removed."""

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        self.locklog = EncounterOrderLog(runtime.lock_table.num_locks)


class UnsortedNoBackoffRuntime(LockSortingRuntime):
    """Hierarchical validation, encounter-order locking, unbounded retries."""

    def __init__(self, device, **kwargs):
        kwargs.setdefault("max_lock_attempts", 10**9)
        super().__init__(device, **kwargs)

    @property
    def name(self):
        return "hv-unsorted-nobackoff"

    def make_thread(self, tc):
        return UnsortedNoBackoffTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        # marks the strawman in merged dashboards: its runs livelock by
        # design, so aggregated sweeps must be able to filter them out
        gauges["sorting_disabled"] = 1
        return gauges


def crossed_order_kernel(data, stripe_span):
    """Adversarial kernel: lane 0 touches (A, B), lane 1 touches (B, A).

    ``stripe_span`` separates A and B so they map to different global
    version locks.  Under lockstep execution this livelocks any unsorted,
    backoff-free commit-time locker.
    """
    from repro.stm.api import run_transaction

    def kernel(tc):
        a = data
        b = data + stripe_span
        first, second = (a, b) if tc.lane_id == 0 else (b, a)

        def body(stm):
            first_value = yield from stm.tx_read(first)
            if not stm.is_opaque:
                return False
            second_value = yield from stm.tx_read(second)
            if not stm.is_opaque:
                return False
            yield from stm.tx_write(first, first_value + 1)
            yield from stm.tx_write(second, second_value + 1)
            return True

        yield from run_transaction(tc, body)

    return kernel
