"""CGL: the coarse-grained locking baseline (paper section 4.2).

Every transaction body becomes a critical section under one global
spinlock, acquired with Algorithm 1's scheme #3 (diverge on failure — safe
for a single lock).  All critical sections across the whole device
serialize; this is the denominator of every speedup the paper reports.

The CGL "transaction" interface never aborts and writes directly to
memory; ``is_opaque`` stays True.
"""

from repro.gpu.events import Phase
from repro.stm.runtime.base import TmRuntime, TxThread


class CglRuntime(TmRuntime):
    """Single-global-lock critical-section runtime."""

    name = "cgl"

    def __init__(self, device, record_history=False):
        super().__init__(device, record_history)
        self.lock_addr = device.mem.alloc(1, "cgl_lock")
        # Host-side commit sequencing for the oracle: the global lock
        # already totally orders critical sections.
        self._commit_seq = 0

    def make_thread(self, tc):
        return CglTx(self, tc)

    def metric_gauges(self):
        gauges = super().metric_gauges()
        gauges["lock_word"] = self.mem.read(self.lock_addr)
        gauges["commit_seq"] = self._commit_seq
        return gauges


class CglTx(TxThread):
    """One critical section presented through the TxThread interface."""

    def __init__(self, runtime, tc):
        super().__init__(runtime, tc)
        self._reads = []
        self._writes = {}

    def read_entries(self):
        return self._reads

    def write_entries(self):
        return self._writes

    def tx_begin(self):
        """Acquire the global lock (scheme #3: diverge on failure)."""
        tc = self.tc
        runtime = self.runtime
        tc.tx_window_begin()
        self._reads = []
        self._writes = {}
        stats_add = runtime.stats.add
        stats_add("begins")
        lock_addr = runtime.lock_addr
        gread_l2 = tc.gread_l2
        locks_phase = Phase.LOCKS
        # Spin-loop counters batch into locals and flush once after the
        # lock is acquired: same totals, no per-iteration counter traffic.
        spin_reads = 0
        acquire_failures = 0
        while True:
            # Test-and-test-and-set: spin on a plain read, CAS only when the
            # lock looks free (keeps the atomic unit from serializing every
            # spinning lane every cycle).
            if gread_l2(lock_addr, locks_phase):
                yield
                spin_reads += 1
                continue
            yield
            observed = tc.atomic_cas(lock_addr, 0, 1, locks_phase)
            yield
            if observed == 0:
                if spin_reads:
                    stats_add("lock_spin_reads", spin_reads)
                if acquire_failures:
                    stats_add("lock_acquire_failures", acquire_failures)
                return
            acquire_failures += 1

    def tx_read(self, addr):
        tc = self.tc
        self.runtime.stats.add("tx_reads")
        value = tc.gread(addr, Phase.NATIVE)
        yield
        if addr not in self._writes:
            # Reads that follow an own write observe this section's own
            # update, not pre-section state; history keeps pre-state reads
            # only, which is what the serializability oracle replays.
            self._reads.append((addr, value))
        return value

    def tx_write(self, addr, value):
        tc = self.tc
        self.runtime.stats.add("tx_writes")
        tc.gwrite(addr, value, Phase.NATIVE)
        yield
        self._writes[addr] = value

    def tx_commit(self):
        """Release the global lock; critical sections always 'commit'."""
        tc = self.tc
        runtime = self.runtime
        tc.fence(Phase.COMMIT)
        yield
        tc.gwrite(runtime.lock_addr, 0, Phase.LOCKS)
        yield
        runtime._commit_seq += 1
        runtime.note_commit(self, version=runtime._commit_seq)
        tc.tx_window_commit()
        return True

    def tx_abort(self):
        """Give up a critical section that has not yet written.

        Programs like labyrinth abandon an attempt when they find their plan
        blocked; under CGL that is legal only before any direct write — a
        critical section cannot undo writes, so aborting after one is a
        programming error and raises.
        """
        if self._writes:
            raise RuntimeError(
                "CGL critical section aborted after writing %d words; direct "
                "updates cannot be rolled back" % len(self._writes)
            )
        tc = self.tc
        runtime = self.runtime
        tc.gwrite(runtime.lock_addr, 0, Phase.LOCKS)
        yield
        runtime.note_abort("giveup", tx=self)
        tc.tx_window_abort()
