"""STM-Optimized: adaptive selection between HV and TBV (paper section 4.2).

False conflicts only arise when distinct shared words hash to the same
global version lock, i.e. when the amount of shared data exceeds the lock
table.  STM-Optimized therefore selects **hierarchical validation** when
``shared_data_size > num_locks`` and plain **timestamp-based validation**
otherwise, where value-based fallback could never pay off.  Either way it
uses encounter-time lock-sorting for livelock freedom.

The paper obtains the shared-data amount "by counting the elements of
arrays before transaction kernels start"; here the workload passes it as
``shared_data_size``.
"""

from repro.stm.runtime.locksorting import LockSortingRuntime


class OptimizedRuntime(LockSortingRuntime):
    """Adaptive HV/TBV runtime with lock-sorting."""

    def __init__(self, device, shared_data_size, num_locks=1024, **kwargs):
        if shared_data_size < 0:
            raise ValueError("shared_data_size must be non-negative")
        kwargs.pop("use_vbv", None)  # the whole point is choosing it
        use_vbv = shared_data_size > num_locks
        super().__init__(device, num_locks=num_locks, use_vbv=use_vbv, **kwargs)
        self.shared_data_size = shared_data_size
        self.stats.add("selected_hv" if use_vbv else "selected_tbv")

    @property
    def name(self):
        return "optimized"

    @property
    def selected(self):
        """Which validation scheme the runtime chose: ``"hv"`` or ``"tbv"``."""
        return "hv" if self.use_vbv else "tbv"

    def metric_gauges(self):
        gauges = super().metric_gauges()
        gauges["shared_data_size"] = self.shared_data_size
        gauges["selected_hv"] = int(self.selected == "hv")
        return gauges
