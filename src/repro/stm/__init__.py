"""GPU-STM: the paper's primary contribution.

A word- and lock-based software transactional memory for SIMT GPUs (Xu et
al., CGO 2014) built around three ideas:

1. **Hierarchical validation (HV)** — timestamp-based validation (TBV)
   against a table of global version locks, falling back to value-based
   validation (VBV) only when the snapshot is stale, which removes TBV's
   false conflicts without VBV's cost (sections 3.1-3.2).
2. **Encounter-time lock-sorting** — every lock touched by a transaction is
   inserted, already sorted, into an order-preserving hash table so that
   commit-time acquisition follows one global order and lockstep warps can
   never livelock (section 3.1).
3. **Coalesced read-/write-set organization** — per-warp merged logs so that
   transactional bookkeeping coalesces into few memory transactions
   (section 3.1).

Use :func:`repro.stm.api.make_runtime` to instantiate any of the paper's
evaluated systems: ``hv-sorting``, ``tbv-sorting``, ``hv-backoff``, ``vbv``,
``optimized``, ``egpgv`` and the ``cgl`` baseline.
"""

from repro.stm.api import (
    EXTENSION_VARIANTS,
    STM_VARIANTS,
    StmConfig,
    make_runtime,
    run_transaction,
)
from repro.stm.clock import GlobalClock
from repro.stm.errors import EgpgvCapacityError, StmError
from repro.stm.versionlock import GlobalLockTable

__all__ = [
    "EXTENSION_VARIANTS",
    "STM_VARIANTS",
    "StmConfig",
    "GlobalClock",
    "GlobalLockTable",
    "EgpgvCapacityError",
    "StmError",
    "make_runtime",
    "run_transaction",
]
