"""Per-transaction Bloom filter over write-set addresses.

Algorithm 3 line 22 checks "has this transaction written to ``addr``?" on
every transactional read; the paper compresses the write-set with a Bloom
filter so the common miss is answered without scanning the log.  The filter
is thread-local metadata, so membership tests cost only local cycles.
"""

_MIX1 = 0x9E3779B1
_MIX2 = 0x85EBCA77


class BloomFilter:
    """A fixed-width Bloom filter with ``num_hashes`` probes per key."""

    __slots__ = ("bits", "num_hashes", "word")

    def __init__(self, bits=64, num_hashes=2):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.bits = bits
        self.num_hashes = num_hashes
        self.word = 0

    def _probes(self, key):
        h1 = (key * _MIX1) & 0xFFFFFFFF
        h2 = ((key ^ (key >> 7)) * _MIX2) & 0xFFFFFFFF | 1
        for i in range(self.num_hashes):
            yield ((h1 + i * h2) & 0xFFFFFFFF) % self.bits

    def add(self, key):
        """Insert ``key``."""
        for bit in self._probes(key):
            self.word |= 1 << bit

    def might_contain(self, key):
        """False means definitely absent; True means possibly present."""
        word = self.word
        return all(word & (1 << bit) for bit in self._probes(key))

    def clear(self):
        """Reset to empty (transaction begin)."""
        self.word = 0

    def __bool__(self):
        return self.word != 0
