"""Per-transaction Bloom filter over write-set addresses.

Algorithm 3 line 22 checks "has this transaction written to ``addr``?" on
every transactional read; the paper compresses the write-set with a Bloom
filter so the common miss is answered without scanning the log.  The filter
is thread-local metadata, so membership tests cost only local cycles.
"""

_MIX1 = 0x9E3779B1
_MIX2 = 0x85EBCA77


class BloomFilter:
    """A fixed-width Bloom filter with ``num_hashes`` probes per key."""

    __slots__ = ("bits", "num_hashes", "word")

    def __init__(self, bits=64, num_hashes=2):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.bits = bits
        self.num_hashes = num_hashes
        self.word = 0

    def _mask(self, key):
        """OR of the probe bits of ``key`` (double hashing: probe *i* is
        ``(h1 + i*h2) % bits``).  A plain int, so membership is one AND."""
        h1 = (key * _MIX1) & 0xFFFFFFFF
        h2 = ((key ^ (key >> 7)) * _MIX2) & 0xFFFFFFFF | 1
        bits = self.bits
        mask = 1 << h1 % bits
        for i in range(1, self.num_hashes):
            mask |= 1 << ((h1 + i * h2) & 0xFFFFFFFF) % bits
        return mask

    def add(self, key):
        """Insert ``key``."""
        self.word |= self._mask(key)

    def might_contain(self, key):
        """False means definitely absent; True means possibly present."""
        mask = self._mask(key)
        return self.word & mask == mask

    def clear(self):
        """Reset to empty (transaction begin)."""
        self.word = 0

    def __bool__(self):
        return self.word != 0
