"""Process-parallel execution of independent experiment runs.

Every figure/table of the paper is a sweep of independent ``run_workload``
calls: each run builds its own fresh :class:`~repro.gpu.memory.GlobalMemory`
and :class:`~repro.gpu.scheduler.Device`, so runs share no state and their
results do not depend on execution order.  That makes the sweeps trivially
parallel across *processes* (the simulator is pure Python, so threads would
serialize on the GIL).

The unit of work is a :class:`JobSpec` — a picklable, declarative
description of one run (workload name + constructor params, STM variant,
lock-table size, config overrides).  A worker process rebuilds the workload
and device from the spec, runs it, and ships back a :class:`JobResult`.
Exceptions inside a worker (``ProgressError`` watchdog trips,
``EgpgvCapacityError`` past the crash-tolerant paths, verification failures)
are captured into the result instead of killing the pool, so one diverging
design point cannot take down a whole sweep.

``run_jobs(specs, jobs=n)`` preserves spec order in its result list, so a
sweep assembled from the results is bit-identical to the serial run no
matter how many workers raced, and ``jobs=1`` bypasses process creation
entirely (the default: correct everywhere, including environments where
multiprocessing is restricted).

The worker count comes from, in order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, else 1.
"""

import os
import re
import traceback

from repro.harness import configs
from repro.harness.runner import run_workload
from repro.telemetry import MetricRegistry, Telemetry
from repro.workloads import make_workload

DEFAULT_JOBS_ENV = "REPRO_JOBS"


def default_jobs():
    """Worker count from the ``REPRO_JOBS`` environment variable (>= 1)."""
    value = os.environ.get(DEFAULT_JOBS_ENV, "").strip()
    if not value:
        return 1
    try:
        return max(1, int(value))
    except ValueError:
        raise ValueError(
            "%s must be an integer, got %r" % (DEFAULT_JOBS_ENV, value)
        )


class JobSpec:
    """A picklable description of one ``run_workload`` call.

    ``key`` is an arbitrary (picklable) tag the sweep uses to file the
    result; it is carried through untouched.  ``gpu_overrides`` are
    attribute overrides applied to :func:`configs.bench_gpu` in the worker
    (e.g. ``{"warp_steps_per_turn": 8}``) — the spec carries plain data
    rather than a config object so it pickles cheaply and stays readable
    in logs.

    ``telemetry=True`` has the worker run under a fresh
    :class:`~repro.telemetry.Telemetry` session and ship the registry back
    as ``JobResult.metrics`` (a plain JSON-able dict; the parent merges
    them with :func:`merge_job_metrics`).  ``timeline_dir`` additionally
    records a per-run Chrome-trace timeline into that directory (implies
    telemetry) and sets ``JobResult.trace_path``.
    """

    __slots__ = (
        "key",
        "workload",
        "params",
        "variant",
        "num_locks",
        "stm_overrides",
        "gpu_overrides",
        "verify",
        "allow_crash",
        "telemetry",
        "timeline_dir",
    )

    def __init__(self, key, workload, params, variant,
                 num_locks=configs.DEFAULT_NUM_LOCKS, stm_overrides=None,
                 gpu_overrides=None, verify=True, allow_crash=False,
                 telemetry=False, timeline_dir=None):
        self.key = key
        self.workload = workload
        self.params = dict(params)
        self.variant = variant
        self.num_locks = num_locks
        self.stm_overrides = dict(stm_overrides) if stm_overrides else None
        self.gpu_overrides = dict(gpu_overrides) if gpu_overrides else None
        self.verify = verify
        self.allow_crash = allow_crash
        self.telemetry = telemetry
        self.timeline_dir = timeline_dir

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        # defaults first: states pickled before a slot existed stay valid
        self.telemetry = False
        self.timeline_dir = None
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self):
        return "JobSpec(%r, %s/%s)" % (self.key, self.workload, self.variant)


class JobResult:
    """Outcome of one :class:`JobSpec`: a ``RunResult`` or a captured error.

    ``metrics`` carries the worker's serialized
    :class:`~repro.telemetry.MetricRegistry` (``as_dict`` form) when the
    spec requested telemetry; ``trace_path`` points at the per-run timeline
    artifact when one was recorded.
    """

    __slots__ = ("key", "run", "error", "metrics", "trace_path")

    def __init__(self, key, run=None, error=None, metrics=None, trace_path=None):
        self.key = key
        self.run = run
        self.error = error
        self.metrics = metrics
        self.trace_path = trace_path

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        self.metrics = None
        self.trace_path = None
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def failed(self):
        return self.error is not None

    def unwrap(self):
        """Return the ``RunResult``; re-raise a captured worker error."""
        if self.error is not None:
            raise RuntimeError(
                "experiment job %r failed in worker:\n%s" % (self.key, self.error)
            )
        return self.run

    def __repr__(self):
        if self.failed:
            return "JobResult(%r, FAILED: %s)" % (self.key, self.error.splitlines()[-1])
        return "JobResult(%r, %r)" % (self.key, self.run)


def _slug(key):
    """Filesystem-safe name for a job key (used for timeline filenames)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", str(key)).strip("_") or "job"


def execute_job(spec):
    """Run one spec in the current process; never raises.

    Module-level (not a closure) so it pickles for ProcessPoolExecutor.
    """
    tel = None
    if spec.telemetry or spec.timeline_dir is not None:
        tel = Telemetry(
            timeline=spec.timeline_dir is not None,
            meta={
                "job": str(spec.key),
                "workload": spec.workload,
                "variant": spec.variant,
            },
        )
    try:
        gpu = configs.bench_gpu()
        if spec.gpu_overrides:
            for attr, value in spec.gpu_overrides.items():
                if not hasattr(gpu, attr):
                    raise ValueError("unknown GpuConfig attribute %r" % attr)
                setattr(gpu, attr, value)
        run = run_workload(
            make_workload(spec.workload, **spec.params),
            spec.variant,
            gpu,
            num_locks=spec.num_locks,
            stm_overrides=spec.stm_overrides,
            verify=spec.verify,
            allow_crash=spec.allow_crash,
            telemetry=tel,
        )
        result = JobResult(spec.key, run=run)
    except Exception:
        result = JobResult(spec.key, error=traceback.format_exc())
    if tel is not None:
        result.metrics = tel.registry.as_dict()
        if spec.timeline_dir is not None and tel.timeline is not None:
            os.makedirs(spec.timeline_dir, exist_ok=True)
            path = os.path.join(
                spec.timeline_dir, "%s.trace.json" % _slug(spec.key)
            )
            tel.write_timeline(path)
            result.trace_path = path
    return result


def merge_job_metrics(results, into=None):
    """Merge the per-worker registries of ``results`` into one registry.

    Counters sum, gauges take the last non-``None`` value, histograms merge
    bucket-wise — the aggregation half of the telemetry layer's
    cross-process story.  ``into`` (a :class:`MetricRegistry`) accumulates
    in place when given; results without metrics are skipped.
    """
    merged = into if into is not None else MetricRegistry()
    for result in results:
        if result.metrics is None:
            continue
        merged.merge(MetricRegistry.from_dict(result.metrics))
    return merged


def run_jobs(specs, jobs=None, executor=None):
    """Execute ``specs``; return the executor's results in spec order.

    ``executor`` maps one spec to one result and must never raise; it
    defaults to :func:`execute_job` (the figure sweeps' worker).  Other
    sweeps — e.g. the schedule fuzzer's
    :func:`repro.sched.fuzz.execute_fuzz_job` — pass their own; it must be
    a module-level callable so it pickles into worker processes.

    ``jobs=1`` (or a single spec) runs serially in-process with no
    executor pool.  With ``jobs > 1`` the specs fan out over a
    ``ProcessPoolExecutor``; ordering, and therefore every figure built
    from the results, is identical either way.
    """
    specs = list(specs)
    if executor is None:
        executor = execute_job
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(specs) <= 1:
        return [executor(spec) for spec in specs]
    # imported lazily: the serial path must work even where process
    # spawning is unavailable (sandboxes, some CI runners)
    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # pool.map preserves input order; chunksize 1 keeps long and short
        # runs from being glued to the same worker
        return list(pool.map(executor, specs, chunksize=1))
