"""Process-parallel execution of independent experiment runs.

Every figure/table of the paper is a sweep of independent ``run_workload``
calls: each run builds its own fresh :class:`~repro.gpu.memory.GlobalMemory`
and :class:`~repro.gpu.scheduler.Device`, so runs share no state and their
results do not depend on execution order.  That makes the sweeps trivially
parallel across *processes* (the simulator is pure Python, so threads would
serialize on the GIL).

The unit of work is a :class:`JobSpec` — a picklable, declarative
description of one run (workload name + constructor params, STM variant,
lock-table size, config overrides).  A worker process rebuilds the workload
and device from the spec, runs it, and ships back a :class:`JobResult`.
Exceptions inside a worker (``ProgressError`` watchdog trips,
``EgpgvCapacityError`` past the crash-tolerant paths, verification failures)
are captured into the result instead of killing the pool, so one diverging
design point cannot take down a whole sweep.

``run_jobs(specs, jobs=n)`` preserves spec order in its result list, so a
sweep assembled from the results is bit-identical to the serial run no
matter how many workers raced, and ``jobs=1`` bypasses process creation
entirely (the default: correct everywhere, including environments where
multiprocessing is restricted).

The worker count comes from, in order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, else 1.
"""

import os
import pickle
import re
import traceback

from repro.gpu.errors import LivelockError, ProgressError
from repro.harness import configs
from repro.harness.runner import run_workload
from repro.telemetry import MetricRegistry, Telemetry
from repro.workloads import make_workload

DEFAULT_JOBS_ENV = "REPRO_JOBS"


class TransientJobError(RuntimeError):
    """A job failure the supervisor may retry (chaos-injected or
    environment-induced: a starved worker, a stalled warp window, memory
    pressure).  Raising it — or wrapping another exception in it — marks
    the attempt transient; everything else is treated as deterministic and
    fails without retry."""


def classify_exception(exc):
    """Map an exception to ``(category, transient)`` — the supervision
    layer's failure taxonomy (see docs/resilience.md).

    Deterministic simulator outcomes are never transient: the same spec
    replays to the same watchdog trip, so retrying a livelock or a
    suspected deadlock is wasted work.  Transience comes from the
    *environment* (killed or starved workers, memory pressure) or from an
    explicit :class:`TransientJobError`.
    """
    if isinstance(exc, LivelockError):
        return "livelock", False
    if isinstance(exc, ProgressError):
        return "deadlock", False
    if isinstance(exc, TransientJobError):
        return "transient", True
    if isinstance(exc, pickle.PicklingError):
        return "unpicklable", False
    if isinstance(exc, MemoryError):
        return "oom", True
    return "error", False


class JobFailure:
    """Structured description of one failed job: what, why, how often.

    Plain picklable data carried on :attr:`JobResult.failure` so sweeps,
    the supervisor and the journal can act on failures without parsing
    traceback strings.  ``category`` is one of the taxonomy names produced
    by :func:`classify_exception` plus the supervisor-level categories
    (``timeout``, ``worker-lost``).  ``transient`` records whether the
    supervisor considered the failure retryable; ``attempts`` how many
    attempts were made in total (1 when unsupervised).
    """

    __slots__ = (
        "key", "category", "exception", "message", "traceback",
        "attempts", "transient",
    )

    def __init__(self, key, category, exception, message, traceback=None,
                 attempts=1, transient=False):
        self.key = key
        self.category = category
        self.exception = exception
        self.message = message
        self.traceback = traceback
        self.attempts = attempts
        self.transient = transient

    @classmethod
    def from_exception(cls, key, exc, attempts=1, tb=None):
        category, transient = classify_exception(exc)
        return cls(
            key,
            category,
            type(exc).__name__,
            str(exc),
            traceback=tb,
            attempts=attempts,
            transient=transient,
        )

    def as_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __getstate__(self):
        return self.as_dict()

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def brief(self):
        return "%s[%s] after %d attempt(s): %s" % (
            self.exception, self.category, self.attempts, self.message
        )

    def __repr__(self):
        return "JobFailure(%r, %s)" % (self.key, self.brief())


def default_jobs():
    """Worker count from the ``REPRO_JOBS`` environment variable (>= 1)."""
    value = os.environ.get(DEFAULT_JOBS_ENV, "").strip()
    if not value:
        return 1
    try:
        return max(1, int(value))
    except ValueError:
        raise ValueError(
            "%s must be an integer, got %r" % (DEFAULT_JOBS_ENV, value)
        )


class JobSpec:
    """A picklable description of one ``run_workload`` call.

    ``key`` is an arbitrary (picklable) tag the sweep uses to file the
    result; it is carried through untouched.  ``gpu_overrides`` are
    attribute overrides applied to :func:`configs.bench_gpu` in the worker
    (e.g. ``{"warp_steps_per_turn": 8}``) — the spec carries plain data
    rather than a config object so it pickles cheaply and stays readable
    in logs.

    ``telemetry=True`` has the worker run under a fresh
    :class:`~repro.telemetry.Telemetry` session and ship the registry back
    as ``JobResult.metrics`` (a plain JSON-able dict; the parent merges
    them with :func:`merge_job_metrics`).  ``timeline_dir`` additionally
    records a per-run Chrome-trace timeline into that directory (implies
    telemetry) and sets ``JobResult.trace_path``.
    """

    __slots__ = (
        "key",
        "workload",
        "params",
        "variant",
        "num_locks",
        "stm_overrides",
        "gpu_overrides",
        "verify",
        "allow_crash",
        "telemetry",
        "timeline_dir",
        "fault_plan",
    )

    def __init__(self, key, workload, params, variant,
                 num_locks=configs.DEFAULT_NUM_LOCKS, stm_overrides=None,
                 gpu_overrides=None, verify=True, allow_crash=False,
                 telemetry=False, timeline_dir=None, fault_plan=None):
        self.key = key
        self.workload = workload
        self.params = dict(params)
        self.variant = variant
        self.num_locks = num_locks
        self.stm_overrides = dict(stm_overrides) if stm_overrides else None
        self.gpu_overrides = dict(gpu_overrides) if gpu_overrides else None
        self.verify = verify
        self.allow_crash = allow_crash
        self.telemetry = telemetry
        self.timeline_dir = timeline_dir
        # a list of fault-spec strings (FaultSpec.parse syntax) armed on
        # the worker's device — carried as plain data so the spec pickles
        # and fingerprints without importing the faults package
        self.fault_plan = list(fault_plan) if fault_plan else None

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        # defaults first: states pickled before a slot existed stay valid
        self.telemetry = False
        self.timeline_dir = None
        self.fault_plan = None
        for slot, value in state.items():
            setattr(self, slot, value)

    def clone(self, **updates):
        """A deep-enough copy with ``updates`` applied (supervision uses
        this to overlay cycle budgets and chaos fault plans without
        mutating the caller's spec list)."""
        state = self.__getstate__()
        state.update(updates)
        spec = JobSpec.__new__(JobSpec)
        spec.__setstate__(state)
        spec.params = dict(spec.params)
        if spec.stm_overrides is not None:
            spec.stm_overrides = dict(spec.stm_overrides)
        if spec.gpu_overrides is not None:
            spec.gpu_overrides = dict(spec.gpu_overrides)
        if spec.fault_plan is not None:
            spec.fault_plan = list(spec.fault_plan)
        return spec

    def __repr__(self):
        return "JobSpec(%r, %s/%s)" % (self.key, self.workload, self.variant)


class JobResult:
    """Outcome of one :class:`JobSpec`: a ``RunResult`` or a captured error.

    ``metrics`` carries the worker's serialized
    :class:`~repro.telemetry.MetricRegistry` (``as_dict`` form) when the
    spec requested telemetry; ``trace_path`` points at the per-run timeline
    artifact when one was recorded.  ``failure`` is the structured
    :class:`JobFailure` companion of ``error`` (the raw traceback string):
    always set together for a failed job.
    """

    __slots__ = ("key", "run", "error", "metrics", "trace_path", "failure")

    def __init__(self, key, run=None, error=None, metrics=None,
                 trace_path=None, failure=None):
        self.key = key
        self.run = run
        self.error = error
        self.metrics = metrics
        self.trace_path = trace_path
        self.failure = failure

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        self.metrics = None
        self.trace_path = None
        self.failure = None
        for slot, value in state.items():
            setattr(self, slot, value)

    @property
    def failed(self):
        return self.error is not None

    def brief_error(self):
        """One-line description of the failure (structured when possible)."""
        if self.failure is not None:
            return self.failure.brief()
        if self.error is not None:
            return self.error.strip().splitlines()[-1]
        return None

    def unwrap(self):
        """Return the ``RunResult``; re-raise a captured worker error."""
        if self.error is not None:
            raise RuntimeError(
                "experiment job %r failed in worker:\n%s" % (self.key, self.error)
            )
        return self.run

    def __repr__(self):
        if self.failed:
            return "JobResult(%r, FAILED: %s)" % (self.key, self.brief_error())
        return "JobResult(%r, %r)" % (self.key, self.run)


def _slug(key):
    """Filesystem-safe name for a job key (used for timeline filenames)."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", str(key)).strip("_") or "job"


def execute_job(spec):
    """Run one spec in the current process; never raises.

    Module-level (not a closure) so it pickles for ProcessPoolExecutor.
    """
    tel = None
    if spec.telemetry or spec.timeline_dir is not None:
        tel = Telemetry(
            timeline=spec.timeline_dir is not None,
            meta={
                "job": str(spec.key),
                "workload": spec.workload,
                "variant": spec.variant,
            },
        )
    try:
        gpu = configs.bench_gpu()
        if spec.gpu_overrides:
            for attr, value in spec.gpu_overrides.items():
                if not hasattr(gpu, attr):
                    raise ValueError("unknown GpuConfig attribute %r" % attr)
                setattr(gpu, attr, value)
        run = run_workload(
            make_workload(spec.workload, **spec.params),
            spec.variant,
            gpu,
            num_locks=spec.num_locks,
            stm_overrides=spec.stm_overrides,
            verify=spec.verify,
            allow_crash=spec.allow_crash,
            telemetry=tel,
            fault_plan=spec.fault_plan,
        )
        result = JobResult(spec.key, run=run)
    except Exception as exc:
        result = JobResult(
            spec.key,
            error=traceback.format_exc(),
            failure=JobFailure.from_exception(
                spec.key, exc, tb=traceback.format_exc()
            ),
        )
    if tel is not None:
        result.metrics = tel.registry.as_dict()
        if spec.timeline_dir is not None and tel.timeline is not None:
            os.makedirs(spec.timeline_dir, exist_ok=True)
            path = os.path.join(
                spec.timeline_dir, "%s.trace.json" % _slug(spec.key)
            )
            tel.write_timeline(path)
            result.trace_path = path
    return result


def merge_job_metrics(results, into=None):
    """Merge the per-worker registries of ``results`` into one registry.

    Counters sum, gauges take the last non-``None`` value, histograms merge
    bucket-wise — the aggregation half of the telemetry layer's
    cross-process story.  ``into`` (a :class:`MetricRegistry`) accumulates
    in place when given; results without metrics are skipped.
    """
    merged = into if into is not None else MetricRegistry()
    for result in results:
        if result.metrics is None:
            continue
        merged.merge(MetricRegistry.from_dict(result.metrics))
    return merged


def _pool_error_result(spec, exc):
    """A structured failure for a job the *pool machinery* lost.

    A bare ``PicklingError`` escaping ``pool.map`` used to abort the whole
    sweep without saying which spec carried the unpicklable kernel arg (or
    produced the unpicklable result).  Each pool failure now becomes a
    :class:`JobFailure` naming the offending :class:`JobSpec`.
    """
    category, transient = classify_exception(exc)
    if "pickle" in type(exc).__name__.lower() or "pickle" in str(exc).lower():
        category = "unpicklable"
        transient = False
    message = (
        "job %r (%r) failed in the process pool: %s: %s"
        % (getattr(spec, "key", spec), spec, type(exc).__name__, exc)
    )
    failure = JobFailure(
        getattr(spec, "key", None), category, type(exc).__name__, message,
        traceback=traceback.format_exc(), transient=transient,
    )
    return JobResult(getattr(spec, "key", None), error=message, failure=failure)


def run_jobs(specs, jobs=None, executor=None, supervise=None, journal=None,
             chaos=None, metrics=None, recorder=None):
    """Execute ``specs``; return the executor's results in spec order.

    ``executor`` maps one spec to one result and must never raise; it
    defaults to :func:`execute_job` (the figure sweeps' worker).  Other
    sweeps — e.g. the schedule fuzzer's
    :func:`repro.sched.fuzz.execute_fuzz_job` — pass their own; it must be
    a module-level callable so it pickles into worker processes.

    ``jobs=1`` (or a single spec) runs serially in-process with no
    executor pool.  With ``jobs > 1`` the specs fan out over a
    ``ProcessPoolExecutor``; ordering, and therefore every figure built
    from the results, is identical either way.

    ``supervise`` (a :class:`~repro.harness.supervisor.SupervisorConfig`
    or a kwargs dict for one), ``journal`` (a path or
    :class:`~repro.harness.journal.SweepJournal`) and ``chaos`` (a
    :class:`~repro.harness.supervisor.ChaosPlan`) route execution through
    :func:`repro.harness.supervisor.run_supervised` — per-job timeouts,
    bounded retry with backoff, checkpoint/resume.  All three default to
    ``None``: the happy path below runs exactly as before, with no
    supervision machinery on it.  ``metrics`` (a ``MetricRegistry``)
    receives the ``supervisor.*`` counters when supervision is active.

    ``recorder`` — a callable ``(specs, results, metrics)``, typically a
    :class:`~repro.expdb.recorder.SweepRecorder` — is invoked exactly
    once with the finished sweep so the invocation lands in the
    experiment database; ``None`` (the default) records nothing.
    """
    if supervise is not None or journal is not None or chaos is not None:
        # imported lazily: the unsupervised path must not pay for (or
        # depend on) the supervision stack
        from repro.harness.supervisor import run_supervised

        return run_supervised(
            specs, jobs=jobs, config=supervise, journal=journal,
            chaos=chaos, executor=executor, metrics=metrics,
            recorder=recorder,
        )
    specs = list(specs)
    if executor is None:
        executor = execute_job
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(specs) <= 1:
        results = [executor(spec) for spec in specs]
        if recorder is not None:
            recorder(specs, results, metrics)
        return results
    # imported lazily: the serial path must work even where process
    # spawning is unavailable (sandboxes, some CI runners)
    from concurrent.futures import ProcessPoolExecutor

    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # one submit per spec (equivalent to pool.map with chunksize 1,
        # which kept long and short runs from being glued to one worker)
        # so a pool-level failure — an unpicklable kernel arg in a spec,
        # an unpicklable object in a result — is attributable to its job
        # instead of aborting the whole sweep
        futures = [pool.submit(executor, spec) for spec in specs]
        results = []
        for spec, future in zip(specs, futures):
            try:
                results.append(future.result())
            except Exception as exc:  # noqa: BLE001 - captured per job
                results.append(_pool_error_result(spec, exc))
    if recorder is not None:
        recorder(specs, results, metrics)
    return results
