"""Optional cProfile instrumentation for harness runs.

The simulator's throughput (warp-steps/second) is the practical limit on
how much of the paper we can sweep, so the harness can profile itself:
``python -m repro.harness fig2 --quick --profile`` prints the top of the
cumulative-time profile after the run.  Profiling covers the driving
process only — parallel workers (``--jobs``) run unprofiled, so profile
with ``--jobs 1`` to see the simulator hot path.
"""

import cProfile
import pstats
from contextlib import contextmanager

#: default number of rows of the profile table to print
DEFAULT_LIMIT = 25


@contextmanager
def maybe_profile(enabled, stream=None, limit=DEFAULT_LIMIT,
                  sort="cumulative", out_path=None):
    """Context manager: profile the enclosed block when ``enabled``.

    When neither ``enabled`` nor ``out_path`` is set this is a no-op with
    zero overhead, so call sites can wrap their work unconditionally.  On
    exit the profile is printed to ``stream`` (default stdout), sorted by
    ``sort`` — printing happens only when ``enabled``, so ``out_path``
    alone captures silently.

    ``out_path`` dumps the raw profile (``cProfile`` dump format) to that
    file for offline analysis: load it with ``pstats.Stats(path)`` or feed
    it to snakeviz/gprof2dot.
    """
    if not (enabled or out_path):
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        if out_path:
            profiler.dump_stats(out_path)
        if enabled:
            stats = pstats.Stats(profiler, stream=stream)
            stats.sort_stats(sort).print_stats(limit)
