"""Run one (workload, STM variant) combination and collect metrics."""

from repro.gpu import make_device
from repro.gpu.errors import GpuError
from repro.stm import StmConfig, make_runtime
from repro.stm.errors import EgpgvCapacityError
from repro.stm.oracle import check_history


class RunResult:
    """Everything the figures and tables need from one run."""

    __slots__ = (
        "workload",
        "variant",
        "cycles",
        "kernel_results",
        "stats",
        "abort_rate",
        "commits",
        "tx_time_fraction",
        "crashed",
        "crash_reason",
    )

    def __init__(self, workload, variant):
        self.workload = workload
        self.variant = variant
        self.cycles = 0
        self.kernel_results = []
        self.stats = {}
        self.abort_rate = 0.0
        self.commits = 0
        self.tx_time_fraction = 0.0
        self.crashed = False
        self.crash_reason = None

    def as_summary(self):
        """Deterministic plain-data digest of the run, for the experiment
        database's per-cell summaries — numbers only, nothing timed."""
        return {
            "workload": self.workload,
            "variant": self.variant,
            "cycles": self.cycles,
            "commits": self.commits,
            "abort_rate": round(self.abort_rate, 6),
            "crashed": self.crashed,
            "crash_reason": self.crash_reason,
        }

    def __repr__(self):
        if self.crashed:
            return "RunResult(%s/%s CRASHED: %s)" % (
                self.workload,
                self.variant,
                self.crash_reason,
            )
        return "RunResult(%s/%s cycles=%d commits=%d abort_rate=%.2f)" % (
            self.workload,
            self.variant,
            self.cycles,
            self.commits,
            self.abort_rate,
        )


def _publish_run(telemetry, runtime, result, device):
    """Report a finished (or crashed) run into the telemetry session."""
    if telemetry is None:
        return
    runtime.publish_metrics(telemetry.registry)
    telemetry.publish_memory(device.mem)
    telemetry.registry.add("runs.crashed" if result.crashed else "runs.completed")


def run_workload(
    workload,
    variant,
    gpu_config,
    num_locks=1024,
    stm_overrides=None,
    verify=True,
    check_oracle=False,
    allow_crash=False,
    telemetry=None,
    sanitizer=None,
    fault_plan=None,
):
    """Set up ``workload`` on a fresh device, run all its kernels under the
    STM ``variant``, verify, and return a :class:`RunResult`.

    ``allow_crash=True`` converts :class:`EgpgvCapacityError` into a crashed
    result instead of raising — how the Figure 3 sweep records EGPGV's
    behaviour at large thread counts.

    ``telemetry`` (a :class:`~repro.telemetry.session.Telemetry`) attaches
    the telemetry layer: the device reports scheduler/kernel metrics, the
    runtime publishes its counter bag and gauges after the run, and — when
    the session records a timeline — it is installed as the runtime's
    tracer so abort reasons and commit versions reach the trace.

    ``sanitizer`` (a :class:`~repro.faults.sanitizer.StmSanitizer`) is
    bound to the runtime so the online invariant checks run alongside the
    workload; its at-exit checks run after the last kernel.  ``fault_plan``
    (a :class:`~repro.faults.plan.FaultPlan`, or an iterable of
    ``FaultSpec.parse`` strings — the form :class:`~repro.harness.parallel.
    JobSpec` carries across process boundaries) is armed on the device
    after workload setup so region-relative fault addresses resolve.
    Neither can be combined with a timeline-recording telemetry session
    (both own the thread-context factory).
    """
    if fault_plan is not None:
        # imported lazily: the harness must stay importable without the
        # faults package on the happy path
        from repro.faults.plan import FaultPlan

        if not isinstance(fault_plan, FaultPlan):
            fault_plan = FaultPlan(fault_plan)
    device = make_device(gpu_config, telemetry=telemetry)
    workload.setup(device)
    overrides = dict(stm_overrides or {})
    overrides.setdefault("num_locks", num_locks)
    overrides.setdefault("shared_data_size", workload.shared_data_size)
    if check_oracle:
        overrides["record_history"] = True
    config = StmConfig(**overrides)
    runtime = make_runtime(variant, device, config)
    if telemetry is not None and runtime.tracer is None:
        runtime.tracer = telemetry
    if sanitizer is not None:
        sanitizer.bind(runtime)
    if fault_plan is not None:
        fault_plan.arm(device)

    result = RunResult(workload.name, variant)
    initial = list(device.mem.words) if check_oracle else None
    try:
        for spec in workload.kernels():
            kernel_result = device.launch(
                spec.kernel, spec.grid, spec.block, args=spec.args, attach=runtime.attach
            )
            result.kernel_results.append(kernel_result)
            result.cycles += kernel_result.cycles
    except EgpgvCapacityError as exc:
        if not allow_crash:
            raise
        result.crashed = True
        result.crash_reason = str(exc)
        _publish_run(telemetry, runtime, result, device)
        return result

    for tx in runtime.threads:
        locklog = getattr(tx, "locklog", None)
        if locklog is not None:
            runtime.stats.add("locklog_comparisons", locklog.comparisons)
    result.stats = runtime.stats.as_dict()
    result.commits = runtime.stats["commits"]
    result.abort_rate = runtime.abort_rate()
    total = sum(k.thread_cycles_total for k in result.kernel_results)
    in_tx = sum(k.thread_cycles_in_tx for k in result.kernel_results)
    result.tx_time_fraction = in_tx / total if total else 0.0
    _publish_run(telemetry, runtime, result, device)
    if sanitizer is not None:
        sanitizer.check_kernel_exit()

    if verify:
        workload.verify(device, runtime)
        expected = workload.expected_commits()
        if expected is not None and result.commits != expected:
            raise AssertionError(
                "%s/%s commits %d != expected %d"
                % (workload.name, variant, result.commits, expected)
            )
    if check_oracle:
        check_history(runtime.history, initial, device.mem)
    return result
