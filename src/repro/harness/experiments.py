"""Per-figure / per-table experiment drivers (DESIGN.md experiment index).

Every public function regenerates one evaluation artifact of the paper and
returns a plain-data result object with a ``render()`` method producing the
ASCII table the benchmark harness prints.  Scaled geometries are documented
in :mod:`repro.harness.configs`; EXPERIMENTS.md records paper-vs-measured.

Each driver builds its sweep as a list of :class:`~repro.harness.parallel.
JobSpec` descriptions and hands them to :func:`~repro.harness.parallel.
run_jobs`, so any figure can fan out over worker processes (``jobs=N`` /
``REPRO_JOBS``) without changing its results: runs are independent, results
are filed by spec key, and assembly order is fixed by the spec list.
"""

from repro.gpu.events import Phase
from repro.harness import configs
from repro.harness.parallel import JobSpec, merge_job_metrics, run_jobs
from repro.harness.report import render_breakdown, render_series, render_table
from repro.workloads import make_workload

FIG2_WORKLOADS = ("ra", "ht", "gn", "lb", "km")
FIG2_VARIANTS = (
    "egpgv",
    "vbv",
    "tbv-sorting",
    "hv-backoff",
    "hv-sorting",
    "optimized",
)


def _scaled(params, factor):
    """Shrink a workload geometry for quick runs."""
    scaled = dict(params)
    for key in ("grid", "grid_blocks", "match_grid"):
        if key in scaled:
            scaled[key] = max(1, scaled[key] // factor)
    if "num_points" in scaled:
        scaled["num_points"] = max(32, scaled["num_points"] // factor)
    return scaled


def _params(name, quick):
    params = configs.bench_workload_params(name)
    return _scaled(params, 4) if quick else params


def _sweep(specs, jobs, metrics=None, timeline_dir=None):
    """Run a sweep's spec list and key the results by spec key.

    ``metrics`` (a :class:`~repro.telemetry.MetricRegistry`) turns on
    per-worker telemetry and merges every worker's registry into it —
    the sweeps' single integration point with the telemetry layer.
    ``timeline_dir`` additionally records one Chrome-trace file per run.
    """
    if metrics is not None or timeline_dir is not None:
        for spec in specs:
            spec.telemetry = True
            spec.timeline_dir = timeline_dir
    results = run_jobs(specs, jobs)
    if metrics is not None:
        merge_job_metrics(results, into=metrics)
    return {out.key: out for out in results}


# ----------------------------------------------------------------------
# Figure 2 — overall speedup over CGL
# ----------------------------------------------------------------------
class Fig2Result:
    def __init__(self):
        self.speedups = {}  # workload -> {variant: speedup or None (crash)}
        self.cycles = {}

    def render(self):
        headers = ["workload"] + list(FIG2_VARIANTS)
        rows = []
        for workload in FIG2_WORKLOADS:
            row = [workload]
            for variant in FIG2_VARIANTS:
                value = self.speedups[workload].get(variant)
                row.append("crash" if value is None else "%.2fx" % value)
            rows.append(row)
        return render_table(
            "Figure 2: STM speedup over coarse-grained locking (CGL)",
            headers,
            rows,
            note="paper shape: optimized fastest-or-tied; VBV poor at scale; "
            "EGPGV constrained; KM does not benefit",
        )


def fig2(quick=False, jobs=None, metrics=None, timeline_dir=None):
    """Speedup of every STM variant over CGL on the five workloads."""
    specs = []
    for name in FIG2_WORKLOADS:
        specs.append(JobSpec((name, "cgl"), name, _params(name, quick), "cgl"))
        for variant in FIG2_VARIANTS:
            if variant == "egpgv":
                # EGPGV runs the same total work at its maximum supported
                # concurrency (4 blocks of statically-sized metadata).
                params = configs.egpgv_workload_params(name)
                if quick:
                    params = _scaled(params, 4)
            else:
                params = _params(name, quick)
            specs.append(
                JobSpec(
                    (name, variant), name, params, variant,
                    stm_overrides=configs.egpgv_capacity(),
                    allow_crash=True,
                )
            )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    result = Fig2Result()
    for name in FIG2_WORKLOADS:
        result.speedups[name] = {}
        result.cycles[name] = {}
        baseline = outcomes[(name, "cgl")].unwrap()
        result.cycles[name]["cgl"] = baseline.cycles
        for variant in FIG2_VARIANTS:
            run = outcomes[(name, variant)].unwrap()
            if run.crashed:
                result.speedups[name][variant] = None
            else:
                result.cycles[name][variant] = run.cycles
                result.speedups[name][variant] = baseline.cycles / run.cycles
    return result


# ----------------------------------------------------------------------
# Figure 3 — scalability with thread count
# ----------------------------------------------------------------------
class Fig3Result:
    def __init__(self, workload, thread_counts):
        self.workload = workload
        self.thread_counts = thread_counts
        self.cycles = {}  # variant -> [cycles or None per thread count]

    def normalized(self, variant):
        """Throughput speedup relative to the variant's smallest geometry."""
        series = self.cycles[variant]
        base = next((c for c in series if c), None)
        return [None if c is None else base / c for c in series]

    def render(self):
        series = {v: self.normalized(v) for v in self.cycles}
        return render_series(
            "Figure 3: scalability on %s (speedup vs own %d-thread run)"
            % (self.workload, self.thread_counts[0]),
            "threads",
            self.thread_counts,
            series,
        )


FIG3_VARIANTS = ("egpgv", "vbv", "tbv-sorting", "hv-backoff", "hv-sorting", "optimized")


def fig3(workload_name="ra", thread_counts=(8, 32, 128, 512, 2048), total_txs=2048,
         quick=False, jobs=None, metrics=None, timeline_dir=None):
    """Fixed total work split over a swept number of threads.

    Reproduces: EGPGV crashes early (static per-block metadata), VBV
    flattens (single sequence lock), the lock-table variants scale.
    """
    if quick:
        thread_counts = thread_counts[:3]
        total_txs = total_txs // 4
    specs = []
    for variant in FIG3_VARIANTS:
        for threads in thread_counts:
            block = min(32, threads)
            grid = max(1, threads // block)
            txs_per_thread = max(1, total_txs // (grid * block))
            params = configs.bench_workload_params(workload_name)
            params.update(grid=grid, block=block, txs_per_thread=txs_per_thread)
            specs.append(
                JobSpec(
                    (variant, threads), workload_name, params, variant,
                    stm_overrides=configs.egpgv_capacity(),
                    allow_crash=True,
                )
            )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    result = Fig3Result(workload_name, list(thread_counts))
    for variant in FIG3_VARIANTS:
        series = []
        for threads in thread_counts:
            run = outcomes[(variant, threads)].unwrap()
            series.append(None if run.crashed else run.cycles)
        result.cycles[variant] = series
    return result


# ----------------------------------------------------------------------
# Figure 4 — HV vs TBV under swept shared data / lock counts
# ----------------------------------------------------------------------
class Fig4Result:
    def __init__(self, shared_sizes, lock_sizes, thread_counts):
        self.shared_sizes = shared_sizes
        self.lock_sizes = lock_sizes
        self.thread_counts = thread_counts
        # (shared, locks, threads, scheme) -> (speedup_vs_cgl, abort_rate)
        self.points = {}

    def render(self):
        out = []
        for shared in self.shared_sizes:
            rows = []
            for locks in self.lock_sizes:
                for threads in self.thread_counts:
                    hv = self.points[(shared, locks, threads, "hv")]
                    tbv = self.points[(shared, locks, threads, "tbv")]
                    rows.append(
                        [
                            locks,
                            threads,
                            "%.2fx" % hv[0],
                            "%.2fx" % tbv[0],
                            "%.0f%%" % (100 * hv[1]),
                            "%.0f%%" % (100 * tbv[1]),
                        ]
                    )
            out.append(
                render_table(
                    "Figure 4(%s): EigenBench, shared data = %d words"
                    % (chr(ord('a') + self.shared_sizes.index(shared)), shared),
                    ["locks", "threads", "HV speedup", "TBV speedup",
                     "HV abort", "TBV abort"],
                    rows,
                )
            )
        return "\n\n".join(out)


def fig4(
    shared_sizes=(1024, 4096, 16384, 65536),
    lock_sizes=(1024, 4096, 16384),
    thread_counts=(256, 1024),
    quick=False,
    jobs=None,
    metrics=None,
    timeline_dir=None,
):
    """EigenBench sweep: HV vs TBV across shared-data and lock-table sizes.

    Paper shape: comparable when shared <= locks; when shared data is large,
    TBV needs many locks to recover while HV reaches near-optimal speed with
    few locks, and HV's abort rate stays far below TBV's.
    """
    if quick:
        shared_sizes = shared_sizes[:2]
        lock_sizes = lock_sizes[:2]
        thread_counts = thread_counts[:1]
    block = 32
    specs = []
    for shared in shared_sizes:
        for threads in thread_counts:
            grid = max(1, threads // block)
            params = dict(
                hot_size=shared, grid=grid, block=block,
                txs_per_thread=2, reads_per_tx=4, writes_per_tx=2,
            )
            specs.append(JobSpec(("cgl", shared, threads), "eb", params, "cgl"))
            for locks in lock_sizes:
                for scheme, variant in (("hv", "hv-sorting"), ("tbv", "tbv-sorting")):
                    specs.append(
                        JobSpec(
                            (shared, locks, threads, scheme), "eb", params,
                            variant, num_locks=locks,
                        )
                    )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    result = Fig4Result(list(shared_sizes), list(lock_sizes), list(thread_counts))
    for shared in shared_sizes:
        for threads in thread_counts:
            baseline = outcomes[("cgl", shared, threads)].unwrap()
            for locks in lock_sizes:
                for scheme in ("hv", "tbv"):
                    run = outcomes[(shared, locks, threads, scheme)].unwrap()
                    result.points[(shared, locks, threads, scheme)] = (
                        baseline.cycles / run.cycles,
                        run.abort_rate,
                    )
    return result


# ----------------------------------------------------------------------
# Figure 5 — single-thread execution time breakdown
# ----------------------------------------------------------------------
FIG5_PHASES = (
    Phase.NATIVE,
    Phase.INIT,
    Phase.BUFFERING,
    Phase.CONSISTENCY,
    Phase.LOCKS,
    Phase.COMMIT,
    Phase.ABORTED,
)


class Fig5Result:
    def __init__(self):
        self.rows = []  # (kernel label, {phase: fraction})

    def render(self):
        return render_breakdown(
            "Figure 5: execution time breakdown under STM-Optimized",
            FIG5_PHASES,
            self.rows,
        )


def fig5(quick=False, jobs=None, metrics=None, timeline_dir=None):
    """Phase breakdown of GN-1, GN-2, LB and KM under STM-Optimized.

    Paper shape: GN-2 dominated by STM overhead (init/buffering); LB and KM
    carry large buffering shares (big read-/write-sets); LB has the largest
    native share (BFS planning); KM burns a visible share in aborted
    transactions.
    """
    specs = [
        JobSpec(name, name, _params(name, quick), "optimized")
        for name in ("gn", "lb", "km")
    ]
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    result = Fig5Result()
    gn = outcomes["gn"].unwrap()
    result.rows.append(("GN-1", gn.kernel_results[0].phases.fractions()))
    result.rows.append(("GN-2", gn.kernel_results[1].phases.fractions()))
    for name, label in (("lb", "LB"), ("km", "KM")):
        run = outcomes[name].unwrap()
        result.rows.append((label, run.kernel_results[0].phases.fractions()))
    return result


# ----------------------------------------------------------------------
# Table 1 — workload characteristics
# ----------------------------------------------------------------------
class Table1Result:
    def __init__(self):
        self.rows = []  # dicts

    def render(self):
        headers = [
            "workload", "kernel", "shared data", "RD/TX", "WR/TX",
            "TX/kernel", "TX time", "conflicts",
        ]
        rows = [
            [
                r["workload"], r["kernel"], r["shared"],
                "%.1f" % r["rd_tx"], "%.1f" % r["wr_tx"],
                r["tx_per_kernel"], "%.0f%%" % (100 * r["tx_time"]),
                "%.0f%%" % (100 * r["conflicts"]),
            ]
            for r in self.rows
        ]
        return render_table(
            "Table 1: transactional characteristics (measured)", headers, rows
        )


def table1(quick=False, jobs=None, metrics=None, timeline_dir=None):
    """Measure the Table 1 columns for every workload under hv-sorting."""
    names = ("ra", "ht", "eb", "lb", "gn", "km")
    specs = [
        JobSpec(name, name, _params(name, quick), "hv-sorting") for name in names
    ]
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    result = Table1Result()
    for name in names:
        run = outcomes[name].unwrap()
        # shared_data_size is a property of the constructed workload, not of
        # the run; rebuild the (cheap) workload object to read it
        workload = make_workload(name, **_params(name, quick))
        attempts = run.stats.get("begins", run.commits)
        for index, kernel_result in enumerate(run.kernel_results):
            label = "%s-%d" % (name, index + 1) if len(run.kernel_results) > 1 else name
            result.rows.append(
                dict(
                    workload=name,
                    kernel=label,
                    shared=workload.shared_data_size,
                    rd_tx=run.stats.get("tx_reads", 0) / max(attempts, 1),
                    wr_tx=run.stats.get("tx_writes", 0) / max(attempts, 1),
                    tx_per_kernel=run.commits,
                    tx_time=kernel_result.tx_time_fraction(),
                    conflicts=run.abort_rate,
                )
            )
    return result


# ----------------------------------------------------------------------
# Table 2 — launch configurations at STM-Optimized's optimum
# ----------------------------------------------------------------------
class Table2Result:
    def __init__(self):
        self.rows = []  # (workload, best_grid, best_block, cycles)

    def render(self):
        return render_table(
            "Table 2: launch configuration where STM-Optimized is fastest",
            ["workload", "thread-blocks", "threads/block", "cycles"],
            [[w, g, b, c] for w, g, b, c in self.rows],
        )


# ----------------------------------------------------------------------
# Ablations — the design choices of sections 3.1/4.2, isolated
# ----------------------------------------------------------------------
class AblationResult:
    def __init__(self):
        self.sorting = {}       # livelock study
        self.locklog = {}       # hashed vs flat lock-log comparisons
        self.coalescing = {}    # coalesced vs scattered log cycles
        self.lock_attempts = {} # abort threshold sweep
        self.scheduler = {}     # warp-scheduling policy sensitivity

    def render(self):
        rows = []
        rows.append(["lock-sorting off (crossed orders)",
                     "LIVELOCK (watchdog)" if self.sorting["unsorted_livelocks"] else "?"])
        rows.append(["lock-sorting on (same workload)",
                     "%d commits" % self.sorting["sorted_commits"]])
        rows.append(["lock-log: flat sorted list",
                     "%d comparisons" % self.locklog["flat_comparisons"]])
        rows.append(["lock-log: order-preserving hash",
                     "%d comparisons (%.1fx fewer)"
                     % (self.locklog["hashed_comparisons"], self.locklog["ratio"])])
        rows.append(["coalesced read-/write-set logs",
                     "%d cycles" % self.coalescing["coalesced_cycles"]])
        rows.append(["scattered logs",
                     "%d cycles (%.2fx slower)"
                     % (self.coalescing["scattered_cycles"], self.coalescing["ratio"])])
        for attempts, (cycles, abort_rate) in sorted(self.lock_attempts.items()):
            rows.append(["max lock attempts = %d" % attempts,
                         "%d cycles, %.0f%% aborts" % (cycles, 100 * abort_rate)])
        for turn, (cycles, abort_rate) in sorted(self.scheduler.items()):
            rows.append(["warp scheduler: %d-step turns" % turn,
                         "%d cycles, %.0f%% aborts" % (cycles, 100 * abort_rate)])
        return render_table(
            "Ablations: encounter-time sorting, hashed lock-log, coalesced "
            "logs, lock-attempt threshold",
            ["design point", "outcome"],
            rows,
        )


def ablations(quick=False, jobs=None, metrics=None, timeline_dir=None):
    """Isolate the paper's design decisions one at a time."""
    from repro.gpu import Device, ProgressError
    from repro.gpu.config import GpuConfig
    from repro.stm import StmConfig, make_runtime
    from repro.stm.runtime.unsorted import (
        UnsortedNoBackoffRuntime,
        crossed_order_kernel,
    )

    result = AblationResult()

    # 1) encounter-time lock-sorting vs none (livelock freedom).  This study
    # drives hand-built devices and inspects runtime objects, so it stays
    # serial; studies 2-5 below are plain run_workload sweeps and fan out.
    def crossed(device):
        data = device.mem.alloc(8, "data")
        return data

    device = Device(GpuConfig(warp_size=2, num_sms=1, max_steps=40_000))
    data = crossed(device)
    runtime = UnsortedNoBackoffRuntime(device, num_locks=8)
    try:
        device.launch(crossed_order_kernel(data, 1), 1, 2, attach=runtime.attach)
        result.sorting["unsorted_livelocks"] = False
    except ProgressError:
        result.sorting["unsorted_livelocks"] = True
    device = Device(GpuConfig(warp_size=2, num_sms=1, max_steps=40_000))
    data = crossed(device)
    runtime = make_runtime("hv-sorting", device, StmConfig(num_locks=8))
    device.launch(crossed_order_kernel(data, 1), 1, 2, attach=runtime.attach)
    result.sorting["sorted_commits"] = runtime.stats["commits"]

    # 2-5) one spec list: hashed vs flat lock-log, coalesced vs scattered
    # logs, the lock-attempt threshold, and scheduler granularity
    ra_params = _params("ra", quick=True)
    km_params = _params("km", quick=True)
    specs = []
    for label, buckets in (("flat", 1), ("hashed", 16)):
        specs.append(
            JobSpec(
                ("locklog", label), "ra", ra_params, "hv-sorting",
                stm_overrides=dict(lock_log_buckets=buckets), verify=False,
            )
        )
    for label, coalesced in (("coalesced", True), ("scattered", False)):
        specs.append(
            JobSpec(
                ("coalescing", label), "ra", ra_params, "hv-sorting",
                stm_overrides=dict(coalesced_logs=coalesced),
            )
        )
    for attempts in (1, 4, 16):
        specs.append(
            JobSpec(
                ("lock_attempts", attempts), "km", km_params, "hv-sorting",
                stm_overrides=dict(max_lock_attempts=attempts),
            )
        )
    for turn in (1, 8):
        specs.append(
            JobSpec(
                ("scheduler", turn), "km", km_params, "hv-sorting",
                gpu_overrides=dict(warp_steps_per_turn=turn),
            )
        )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    for label in ("flat", "hashed"):
        run = outcomes[("locklog", label)].unwrap()
        result.locklog["%s_comparisons" % label] = run.stats.get(
            "locklog_comparisons", 0
        )
    flat = max(result.locklog["flat_comparisons"], 1)
    hashed = max(result.locklog["hashed_comparisons"], 1)
    result.locklog["ratio"] = flat / hashed

    for label in ("coalesced", "scattered"):
        run = outcomes[("coalescing", label)].unwrap()
        result.coalescing["%s_cycles" % label] = run.cycles
    result.coalescing["ratio"] = (
        result.coalescing["scattered_cycles"] / result.coalescing["coalesced_cycles"]
    )

    for attempts in (1, 4, 16):
        run = outcomes[("lock_attempts", attempts)].unwrap()
        result.lock_attempts[attempts] = (run.cycles, run.abort_rate)

    for turn in (1, 8):
        run = outcomes[("scheduler", turn)].unwrap()
        result.scheduler[turn] = (run.cycles, run.abort_rate)
    return result


def table2(quick=False, jobs=None, metrics=None, timeline_dir=None):
    """Sweep launch geometries per workload; report the optimum."""
    sweeps = {
        "ra": [(8, 32), (16, 32), (16, 64), (32, 32)],
        "ht": [(8, 32), (16, 32), (16, 64), (32, 32)],
        "gn": [(8, 32), (16, 32), (16, 64)],
        "lb": [(7, 32), (14, 32), (28, 32)],
        "km": [(4, 32), (8, 32), (16, 32), (32, 32)],
    }
    specs = []
    for name, geometries in sweeps.items():
        if quick:
            geometries = geometries[:2]
        for grid, block in geometries:
            params = _params(name, quick)
            if name == "lb":
                params.update(grid_blocks=grid, block_threads=block)
            else:
                params.update(grid=grid, block=block)
            specs.append(
                JobSpec(
                    (name, grid, block), name, params, "optimized",
                    stm_overrides=configs.egpgv_capacity(),
                )
            )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir)

    result = Table2Result()
    for name, geometries in sweeps.items():
        if quick:
            geometries = geometries[:2]
        best = None
        for grid, block in geometries:
            run = outcomes[(name, grid, block)].unwrap()
            # strict < keeps the original tie-break: the earliest geometry
            # in sweep order wins among equals
            if best is None or run.cycles < best[2]:
                best = (grid, block, run.cycles)
        result.rows.append((name, best[0], best[1], best[2]))
    return result
