"""Per-figure / per-table experiment drivers (DESIGN.md experiment index).

Every public function regenerates one evaluation artifact of the paper and
returns a plain-data result object with a ``render()`` method producing the
ASCII table the benchmark harness prints.  Scaled geometries are documented
in :mod:`repro.harness.configs`; EXPERIMENTS.md records paper-vs-measured.

Each driver builds its sweep as a list of :class:`~repro.harness.parallel.
JobSpec` descriptions and hands them to :func:`~repro.harness.parallel.
run_jobs`, so any figure can fan out over worker processes (``jobs=N`` /
``REPRO_JOBS``) without changing its results: runs are independent, results
are filed by spec key, and assembly order is fixed by the spec list.
"""

from repro.gpu.events import Phase
from repro.harness import configs
from repro.harness.parallel import JobSpec, merge_job_metrics, run_jobs
from repro.harness.report import render_breakdown, render_series, render_table
from repro.workloads import make_workload

FIG2_WORKLOADS = ("ra", "ht", "gn", "lb", "km")
FIG2_VARIANTS = (
    "egpgv",
    "vbv",
    "tbv-sorting",
    "hv-backoff",
    "hv-sorting",
    "optimized",
)


def _scaled(params, factor):
    """Shrink a workload geometry for quick runs."""
    scaled = dict(params)
    for key in ("grid", "grid_blocks", "match_grid"):
        if key in scaled:
            scaled[key] = max(1, scaled[key] // factor)
    if "num_points" in scaled:
        scaled["num_points"] = max(32, scaled["num_points"] // factor)
    return scaled


def _params(name, quick):
    params = configs.bench_workload_params(name)
    return _scaled(params, 4) if quick else params


class _Gap:
    """Sentinel for a table/figure cell whose job failed (distinct from
    ``None``, which the figures use for a *simulated* crash)."""

    __slots__ = ()

    def __repr__(self):
        return "GAP"


GAP = _Gap()


class SweepOutcomes(dict):
    """``{spec key: JobResult}`` plus the sweep's failure roster.

    ``run(key)`` is the degradation-aware accessor the drivers use in
    place of ``outcomes[key].unwrap()``: a failed job yields ``None``
    (the driver renders an explicit gap) instead of raising away the
    rest of the figure.  ``failures`` lists every failed job's
    :class:`~repro.harness.parallel.JobFailure` in spec order so the
    drivers' render footers — and the CLI's exit code — can report them.
    """

    def __init__(self, results):
        super().__init__((out.key, out) for out in results)
        self.failures = []
        for out in results:
            if getattr(out, "failed", False):
                failure = out.failure
                if failure is None:
                    from repro.harness.parallel import JobFailure

                    failure = JobFailure(out.key, "error", "Error",
                                         out.brief_error() or "unknown",
                                         traceback=out.error)
                self.failures.append(failure)

    def run(self, key):
        """The job's ``RunResult``, or ``None`` when the job failed."""
        out = self[key]
        if getattr(out, "failed", False):
            return None
        return out.run


def _failures_note(failures):
    """Render footer listing a sweep's failed jobs (empty when clean)."""
    if not failures:
        return ""
    lines = ["", "%d job(s) failed; affected cells render as FAILED:"
             % len(failures)]
    for failure in failures:
        lines.append("  - %r: %s" % (failure.key, failure.brief()))
    return "\n".join(lines)


def _sweep(specs, jobs, metrics=None, timeline_dir=None, supervise=None,
           journal=None, recorder=None):
    """Run a sweep's spec list and key the results by spec key.

    ``metrics`` (a :class:`~repro.telemetry.MetricRegistry`) turns on
    per-worker telemetry and merges every worker's registry into it —
    the sweeps' single integration point with the telemetry layer.
    ``timeline_dir`` additionally records one Chrome-trace file per run.
    ``supervise``/``journal`` route the sweep through the supervision
    layer (timeouts, retry, checkpoint/resume — see docs/resilience.md);
    the supervisor's ``supervisor.*`` counters land in ``metrics``.
    ``recorder`` (a :class:`~repro.expdb.recorder.SweepRecorder`) records
    the finished sweep in the experiment database.
    """
    if metrics is not None or timeline_dir is not None:
        for spec in specs:
            spec.telemetry = True
            spec.timeline_dir = timeline_dir
    if supervise is not None or journal is not None:
        results = run_jobs(specs, jobs, supervise=supervise, journal=journal,
                           metrics=metrics, recorder=recorder)
    else:
        results = run_jobs(specs, jobs, recorder=recorder)
    if metrics is not None:
        merge_job_metrics(results, into=metrics)
    return SweepOutcomes(results)


# ----------------------------------------------------------------------
# Figure 2 — overall speedup over CGL
# ----------------------------------------------------------------------
class Fig2Result:
    def __init__(self):
        self.speedups = {}  # workload -> {variant: speedup, None (crash) or GAP}
        self.cycles = {}
        self.failures = []

    def render(self):
        headers = ["workload"] + list(FIG2_VARIANTS)
        rows = []
        for workload in FIG2_WORKLOADS:
            row = [workload]
            for variant in FIG2_VARIANTS:
                value = self.speedups[workload].get(variant)
                if value is GAP:
                    row.append("FAILED")
                else:
                    row.append("crash" if value is None else "%.2fx" % value)
            rows.append(row)
        return render_table(
            "Figure 2: STM speedup over coarse-grained locking (CGL)",
            headers,
            rows,
            note="paper shape: optimized fastest-or-tied; VBV poor at scale; "
            "EGPGV constrained; KM does not benefit",
        ) + _failures_note(self.failures)


def fig2(quick=False, jobs=None, metrics=None, timeline_dir=None,
         supervise=None, journal=None, recorder=None):
    """Speedup of every STM variant over CGL on the five workloads."""
    specs = []
    for name in FIG2_WORKLOADS:
        specs.append(JobSpec((name, "cgl"), name, _params(name, quick), "cgl"))
        for variant in FIG2_VARIANTS:
            if variant == "egpgv":
                # EGPGV runs the same total work at its maximum supported
                # concurrency (4 blocks of statically-sized metadata).
                params = configs.egpgv_workload_params(name)
                if quick:
                    params = _scaled(params, 4)
            else:
                params = _params(name, quick)
            specs.append(
                JobSpec(
                    (name, variant), name, params, variant,
                    stm_overrides=configs.egpgv_capacity(),
                    allow_crash=True,
                )
            )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result = Fig2Result()
    result.failures = outcomes.failures
    for name in FIG2_WORKLOADS:
        result.speedups[name] = {}
        result.cycles[name] = {}
        baseline = outcomes.run((name, "cgl"))
        if baseline is not None:
            result.cycles[name]["cgl"] = baseline.cycles
        for variant in FIG2_VARIANTS:
            run = outcomes.run((name, variant))
            if run is None or baseline is None:
                result.speedups[name][variant] = GAP
            elif run.crashed:
                result.speedups[name][variant] = None
            else:
                result.cycles[name][variant] = run.cycles
                result.speedups[name][variant] = baseline.cycles / run.cycles
    return result


# ----------------------------------------------------------------------
# Figure 3 — scalability with thread count
# ----------------------------------------------------------------------
class Fig3Result:
    def __init__(self, workload, thread_counts):
        self.workload = workload
        self.thread_counts = thread_counts
        self.cycles = {}  # variant -> [cycles, None (crash) or GAP per count]
        self.failures = []

    def normalized(self, variant):
        """Throughput speedup relative to the variant's smallest geometry."""
        series = self.cycles[variant]
        base = next(
            (c for c in series if c is not None and c is not GAP and c), None
        )
        out = []
        for c in series:
            if c is GAP:
                out.append("FAILED")
            elif c is None or base is None:
                out.append(None)
            else:
                out.append(base / c)
        return out

    def render(self):
        series = {v: self.normalized(v) for v in self.cycles}
        return render_series(
            "Figure 3: scalability on %s (speedup vs own %d-thread run)"
            % (self.workload, self.thread_counts[0]),
            "threads",
            self.thread_counts,
            series,
        ) + _failures_note(self.failures)


FIG3_VARIANTS = ("egpgv", "vbv", "tbv-sorting", "hv-backoff", "hv-sorting", "optimized")


def fig3(workload_name="ra", thread_counts=(8, 32, 128, 512, 2048), total_txs=2048,
         quick=False, jobs=None, metrics=None, timeline_dir=None,
         supervise=None, journal=None, recorder=None):
    """Fixed total work split over a swept number of threads.

    Reproduces: EGPGV crashes early (static per-block metadata), VBV
    flattens (single sequence lock), the lock-table variants scale.
    """
    if quick:
        thread_counts = thread_counts[:3]
        total_txs = total_txs // 4
    specs = []
    for variant in FIG3_VARIANTS:
        for threads in thread_counts:
            block = min(32, threads)
            grid = max(1, threads // block)
            txs_per_thread = max(1, total_txs // (grid * block))
            params = configs.bench_workload_params(workload_name)
            params.update(grid=grid, block=block, txs_per_thread=txs_per_thread)
            specs.append(
                JobSpec(
                    (variant, threads), workload_name, params, variant,
                    stm_overrides=configs.egpgv_capacity(),
                    allow_crash=True,
                )
            )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result = Fig3Result(workload_name, list(thread_counts))
    result.failures = outcomes.failures
    for variant in FIG3_VARIANTS:
        series = []
        for threads in thread_counts:
            run = outcomes.run((variant, threads))
            if run is None:
                series.append(GAP)
            else:
                series.append(None if run.crashed else run.cycles)
        result.cycles[variant] = series
    return result


# ----------------------------------------------------------------------
# Figure 4 — HV vs TBV under swept shared data / lock counts
# ----------------------------------------------------------------------
class Fig4Result:
    def __init__(self, shared_sizes, lock_sizes, thread_counts):
        self.shared_sizes = shared_sizes
        self.lock_sizes = lock_sizes
        self.thread_counts = thread_counts
        # (shared, locks, threads, scheme) -> (speedup_vs_cgl, abort_rate),
        # or GAP when the point's job (or its CGL baseline) failed
        self.points = {}
        self.failures = []

    @staticmethod
    def _cells(point):
        if point is GAP:
            return "FAILED", "FAILED"
        return "%.2fx" % point[0], "%.0f%%" % (100 * point[1])

    def render(self):
        out = []
        for shared in self.shared_sizes:
            rows = []
            for locks in self.lock_sizes:
                for threads in self.thread_counts:
                    hv_speedup, hv_abort = self._cells(
                        self.points[(shared, locks, threads, "hv")]
                    )
                    tbv_speedup, tbv_abort = self._cells(
                        self.points[(shared, locks, threads, "tbv")]
                    )
                    rows.append(
                        [
                            locks,
                            threads,
                            hv_speedup,
                            tbv_speedup,
                            hv_abort,
                            tbv_abort,
                        ]
                    )
            out.append(
                render_table(
                    "Figure 4(%s): EigenBench, shared data = %d words"
                    % (chr(ord('a') + self.shared_sizes.index(shared)), shared),
                    ["locks", "threads", "HV speedup", "TBV speedup",
                     "HV abort", "TBV abort"],
                    rows,
                )
            )
        return "\n\n".join(out) + _failures_note(self.failures)


def fig4(
    shared_sizes=(1024, 4096, 16384, 65536),
    lock_sizes=(1024, 4096, 16384),
    thread_counts=(256, 1024),
    quick=False,
    jobs=None,
    metrics=None,
    timeline_dir=None,
    supervise=None,
    journal=None,
    recorder=None,
):
    """EigenBench sweep: HV vs TBV across shared-data and lock-table sizes.

    Paper shape: comparable when shared <= locks; when shared data is large,
    TBV needs many locks to recover while HV reaches near-optimal speed with
    few locks, and HV's abort rate stays far below TBV's.
    """
    if quick:
        shared_sizes = shared_sizes[:2]
        lock_sizes = lock_sizes[:2]
        thread_counts = thread_counts[:1]
    block = 32
    specs = []
    for shared in shared_sizes:
        for threads in thread_counts:
            grid = max(1, threads // block)
            params = dict(
                hot_size=shared, grid=grid, block=block,
                txs_per_thread=2, reads_per_tx=4, writes_per_tx=2,
            )
            specs.append(JobSpec(("cgl", shared, threads), "eb", params, "cgl"))
            for locks in lock_sizes:
                for scheme, variant in (("hv", "hv-sorting"), ("tbv", "tbv-sorting")):
                    specs.append(
                        JobSpec(
                            (shared, locks, threads, scheme), "eb", params,
                            variant, num_locks=locks,
                        )
                    )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result = Fig4Result(list(shared_sizes), list(lock_sizes), list(thread_counts))
    result.failures = outcomes.failures
    for shared in shared_sizes:
        for threads in thread_counts:
            baseline = outcomes.run(("cgl", shared, threads))
            for locks in lock_sizes:
                for scheme in ("hv", "tbv"):
                    run = outcomes.run((shared, locks, threads, scheme))
                    if run is None or baseline is None:
                        result.points[(shared, locks, threads, scheme)] = GAP
                    else:
                        result.points[(shared, locks, threads, scheme)] = (
                            baseline.cycles / run.cycles,
                            run.abort_rate,
                        )
    return result


# ----------------------------------------------------------------------
# Figure 5 — single-thread execution time breakdown
# ----------------------------------------------------------------------
FIG5_PHASES = (
    Phase.NATIVE,
    Phase.INIT,
    Phase.BUFFERING,
    Phase.CONSISTENCY,
    Phase.LOCKS,
    Phase.COMMIT,
    Phase.ABORTED,
)


class Fig5Result:
    def __init__(self):
        self.rows = []  # (kernel label, {phase: fraction})
        self.failures = []

    def render(self):
        return render_breakdown(
            "Figure 5: execution time breakdown under STM-Optimized",
            FIG5_PHASES,
            self.rows,
        ) + _failures_note(self.failures)


def fig5(quick=False, jobs=None, metrics=None, timeline_dir=None,
         supervise=None, journal=None, recorder=None):
    """Phase breakdown of GN-1, GN-2, LB and KM under STM-Optimized.

    Paper shape: GN-2 dominated by STM overhead (init/buffering); LB and KM
    carry large buffering shares (big read-/write-sets); LB has the largest
    native share (BFS planning); KM burns a visible share in aborted
    transactions.
    """
    specs = [
        JobSpec(name, name, _params(name, quick), "optimized")
        for name in ("gn", "lb", "km")
    ]
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result = Fig5Result()
    result.failures = outcomes.failures
    gn = outcomes.run("gn")
    if gn is not None:
        result.rows.append(("GN-1", gn.kernel_results[0].phases.fractions()))
        result.rows.append(("GN-2", gn.kernel_results[1].phases.fractions()))
    for name, label in (("lb", "LB"), ("km", "KM")):
        run = outcomes.run(name)
        if run is not None:
            result.rows.append((label, run.kernel_results[0].phases.fractions()))
    return result


# ----------------------------------------------------------------------
# Table 1 — workload characteristics
# ----------------------------------------------------------------------
class Table1Result:
    def __init__(self):
        self.rows = []  # dicts
        self.failures = []

    def render(self):
        headers = [
            "workload", "kernel", "shared data", "RD/TX", "WR/TX",
            "TX/kernel", "TX time", "conflicts",
        ]
        rows = [
            [
                r["workload"], r["kernel"], r["shared"],
                "%.1f" % r["rd_tx"], "%.1f" % r["wr_tx"],
                r["tx_per_kernel"], "%.0f%%" % (100 * r["tx_time"]),
                "%.0f%%" % (100 * r["conflicts"]),
            ]
            for r in self.rows
        ]
        return render_table(
            "Table 1: transactional characteristics (measured)", headers, rows
        ) + _failures_note(self.failures)


def table1(quick=False, jobs=None, metrics=None, timeline_dir=None,
           supervise=None, journal=None, recorder=None):
    """Measure the Table 1 columns for every workload under hv-sorting."""
    names = ("ra", "ht", "eb", "lb", "gn", "km")
    specs = [
        JobSpec(name, name, _params(name, quick), "hv-sorting") for name in names
    ]
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result = Table1Result()
    result.failures = outcomes.failures
    for name in names:
        run = outcomes.run(name)
        if run is None:
            continue
        # shared_data_size is a property of the constructed workload, not of
        # the run; rebuild the (cheap) workload object to read it
        workload = make_workload(name, **_params(name, quick))
        attempts = run.stats.get("begins", run.commits)
        for index, kernel_result in enumerate(run.kernel_results):
            label = "%s-%d" % (name, index + 1) if len(run.kernel_results) > 1 else name
            result.rows.append(
                dict(
                    workload=name,
                    kernel=label,
                    shared=workload.shared_data_size,
                    rd_tx=run.stats.get("tx_reads", 0) / max(attempts, 1),
                    wr_tx=run.stats.get("tx_writes", 0) / max(attempts, 1),
                    tx_per_kernel=run.commits,
                    tx_time=kernel_result.tx_time_fraction(),
                    conflicts=run.abort_rate,
                )
            )
    return result


# ----------------------------------------------------------------------
# Table 2 — launch configurations at STM-Optimized's optimum
# ----------------------------------------------------------------------
class Table2Result:
    def __init__(self):
        self.rows = []  # (workload, best_grid, best_block, cycles)
        self.failures = []

    def render(self):
        return render_table(
            "Table 2: launch configuration where STM-Optimized is fastest",
            ["workload", "thread-blocks", "threads/block", "cycles"],
            [[w, g, b, c] for w, g, b, c in self.rows],
        ) + _failures_note(self.failures)


# ----------------------------------------------------------------------
# Ablations — the design choices of sections 3.1/4.2, isolated
# ----------------------------------------------------------------------
class AblationResult:
    def __init__(self):
        self.sorting = {}       # livelock study
        self.locklog = {}       # hashed vs flat lock-log comparisons
        self.coalescing = {}    # coalesced vs scattered log cycles
        self.lock_attempts = {} # abort threshold sweep
        self.scheduler = {}     # warp-scheduling policy sensitivity
        self.failures = []

    def render(self):
        def fmt(template, *values):
            if any(value is GAP for value in values):
                return "FAILED"
            return template % values

        rows = []
        rows.append(["lock-sorting off (crossed orders)",
                     "LIVELOCK (watchdog)" if self.sorting["unsorted_livelocks"] else "?"])
        rows.append(["lock-sorting on (same workload)",
                     "%d commits" % self.sorting["sorted_commits"]])
        rows.append(["lock-log: flat sorted list",
                     fmt("%d comparisons", self.locklog["flat_comparisons"])])
        rows.append(["lock-log: order-preserving hash",
                     fmt("%d comparisons (%.1fx fewer)",
                         self.locklog["hashed_comparisons"], self.locklog["ratio"])])
        rows.append(["coalesced read-/write-set logs",
                     fmt("%d cycles", self.coalescing["coalesced_cycles"])])
        rows.append(["scattered logs",
                     fmt("%d cycles (%.2fx slower)",
                         self.coalescing["scattered_cycles"], self.coalescing["ratio"])])
        for attempts, value in sorted(self.lock_attempts.items()):
            rows.append(["max lock attempts = %d" % attempts,
                         "FAILED" if value is GAP
                         else "%d cycles, %.0f%% aborts" % (value[0], 100 * value[1])])
        for turn, value in sorted(self.scheduler.items()):
            rows.append(["warp scheduler: %d-step turns" % turn,
                         "FAILED" if value is GAP
                         else "%d cycles, %.0f%% aborts" % (value[0], 100 * value[1])])
        return render_table(
            "Ablations: encounter-time sorting, hashed lock-log, coalesced "
            "logs, lock-attempt threshold",
            ["design point", "outcome"],
            rows,
        ) + _failures_note(self.failures)


def ablations(quick=False, jobs=None, metrics=None, timeline_dir=None,
              supervise=None, journal=None, recorder=None):
    """Isolate the paper's design decisions one at a time."""
    from repro.gpu import Device, ProgressError
    from repro.gpu.config import GpuConfig
    from repro.stm import StmConfig, make_runtime
    from repro.stm.runtime.unsorted import (
        UnsortedNoBackoffRuntime,
        crossed_order_kernel,
    )

    result = AblationResult()

    # 1) encounter-time lock-sorting vs none (livelock freedom).  This study
    # drives hand-built devices and inspects runtime objects, so it stays
    # serial; studies 2-5 below are plain run_workload sweeps and fan out.
    def crossed(device):
        data = device.mem.alloc(8, "data")
        return data

    device = Device(GpuConfig(warp_size=2, num_sms=1, max_steps=40_000))
    data = crossed(device)
    runtime = UnsortedNoBackoffRuntime(device, num_locks=8)
    try:
        device.launch(crossed_order_kernel(data, 1), 1, 2, attach=runtime.attach)
        result.sorting["unsorted_livelocks"] = False
    except ProgressError:
        result.sorting["unsorted_livelocks"] = True
    device = Device(GpuConfig(warp_size=2, num_sms=1, max_steps=40_000))
    data = crossed(device)
    runtime = make_runtime("hv-sorting", device, StmConfig(num_locks=8))
    device.launch(crossed_order_kernel(data, 1), 1, 2, attach=runtime.attach)
    result.sorting["sorted_commits"] = runtime.stats["commits"]

    # 2-5) one spec list: hashed vs flat lock-log, coalesced vs scattered
    # logs, the lock-attempt threshold, and scheduler granularity
    ra_params = _params("ra", quick=True)
    km_params = _params("km", quick=True)
    specs = []
    for label, buckets in (("flat", 1), ("hashed", 16)):
        specs.append(
            JobSpec(
                ("locklog", label), "ra", ra_params, "hv-sorting",
                stm_overrides=dict(lock_log_buckets=buckets), verify=False,
            )
        )
    for label, coalesced in (("coalesced", True), ("scattered", False)):
        specs.append(
            JobSpec(
                ("coalescing", label), "ra", ra_params, "hv-sorting",
                stm_overrides=dict(coalesced_logs=coalesced),
            )
        )
    for attempts in (1, 4, 16):
        specs.append(
            JobSpec(
                ("lock_attempts", attempts), "km", km_params, "hv-sorting",
                stm_overrides=dict(max_lock_attempts=attempts),
            )
        )
    for turn in (1, 8):
        specs.append(
            JobSpec(
                ("scheduler", turn), "km", km_params, "hv-sorting",
                gpu_overrides=dict(warp_steps_per_turn=turn),
            )
        )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result.failures = outcomes.failures
    for label in ("flat", "hashed"):
        run = outcomes.run(("locklog", label))
        result.locklog["%s_comparisons" % label] = (
            GAP if run is None else run.stats.get("locklog_comparisons", 0)
        )
    flat = result.locklog["flat_comparisons"]
    hashed = result.locklog["hashed_comparisons"]
    if flat is GAP or hashed is GAP:
        result.locklog["ratio"] = GAP
    else:
        result.locklog["ratio"] = max(flat, 1) / max(hashed, 1)

    for label in ("coalesced", "scattered"):
        run = outcomes.run(("coalescing", label))
        result.coalescing["%s_cycles" % label] = GAP if run is None else run.cycles
    coalesced = result.coalescing["coalesced_cycles"]
    scattered = result.coalescing["scattered_cycles"]
    if coalesced is GAP or scattered is GAP:
        result.coalescing["ratio"] = GAP
    else:
        result.coalescing["ratio"] = scattered / coalesced

    for attempts in (1, 4, 16):
        run = outcomes.run(("lock_attempts", attempts))
        result.lock_attempts[attempts] = (
            GAP if run is None else (run.cycles, run.abort_rate)
        )

    for turn in (1, 8):
        run = outcomes.run(("scheduler", turn))
        result.scheduler[turn] = GAP if run is None else (run.cycles, run.abort_rate)
    return result


def table2(quick=False, jobs=None, metrics=None, timeline_dir=None,
           supervise=None, journal=None, recorder=None):
    """Sweep launch geometries per workload; report the optimum."""
    sweeps = {
        "ra": [(8, 32), (16, 32), (16, 64), (32, 32)],
        "ht": [(8, 32), (16, 32), (16, 64), (32, 32)],
        "gn": [(8, 32), (16, 32), (16, 64)],
        "lb": [(7, 32), (14, 32), (28, 32)],
        "km": [(4, 32), (8, 32), (16, 32), (32, 32)],
    }
    specs = []
    for name, geometries in sweeps.items():
        if quick:
            geometries = geometries[:2]
        for grid, block in geometries:
            params = _params(name, quick)
            if name == "lb":
                params.update(grid_blocks=grid, block_threads=block)
            else:
                params.update(grid=grid, block=block)
            specs.append(
                JobSpec(
                    (name, grid, block), name, params, "optimized",
                    stm_overrides=configs.egpgv_capacity(),
                )
            )
    outcomes = _sweep(specs, jobs, metrics, timeline_dir,
                      supervise=supervise, journal=journal, recorder=recorder)

    result = Table2Result()
    result.failures = outcomes.failures
    for name, geometries in sweeps.items():
        if quick:
            geometries = geometries[:2]
        best = None
        for grid, block in geometries:
            run = outcomes.run((name, grid, block))
            if run is None:
                continue
            # strict < keeps the original tie-break: the earliest geometry
            # in sweep order wins among equals
            if best is None or run.cycles < best[2]:
                best = (grid, block, run.cycles)
        if best is None:
            result.rows.append((name, "-", "-", "FAILED"))
        else:
            result.rows.append((name, best[0], best[1], best[2]))
    return result
