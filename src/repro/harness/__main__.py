"""Command-line entry point: regenerate any table or figure, trace, or fuzz.

Usage::

    python -m repro.harness table1 [--quick]
    python -m repro.harness fig2 [--quick] [--jobs N] [--metrics out.json]
    python -m repro.harness fig3 [--quick]
    python -m repro.harness fig4 [--quick]
    python -m repro.harness fig5 [--quick]
    python -m repro.harness table2 [--quick]
    python -m repro.harness all --quick --jobs 4
    python -m repro.harness trace fig5 --quick --out trace-artifacts
    python -m repro.harness trace km --variant hv-sorting --quick
    python -m repro.harness fuzz --workload ra --variant all --seeds 8 \\
        --policy random --policy adversarial --jobs 4 --out fuzz-artifacts
    python -m repro.harness inject --mutants all \\
        --checkers oracle,sanitizer,fuzzer --jobs 4 --out fault-artifacts
    python -m repro.harness sanitize --workload ra --variant all \\
        --fault "clock_skew:region=g_clock,count=2"
    python -m repro.harness fig2 --quick --jobs 4 --retries 2 \\
        --timeout 300 --resume out/fig2.journal
    python -m repro.harness chaos --jobs 2 --out chaos-artifacts

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) fans the
independent runs of each sweep out over N worker processes; results are
identical to a serial run.  ``--profile`` prints a cProfile summary of the
driving process after each target (use with ``--jobs 1``);
``--profile-out FILE`` dumps the raw profile for ``pstats``/snakeviz.

``--metrics FILE`` writes the run's merged telemetry registry (counters,
gauges, histograms; see :mod:`repro.telemetry`) as JSON.  On figure/table
targets it turns on per-worker telemetry and aggregates across processes.

The ``trace`` target records simulated-time Chrome-trace timelines
(open them in ``chrome://tracing`` or https://ui.perfetto.dev).  Its
``experiment`` argument is either a figure/table name — every run of that
sweep gets its own ``<out>/<key>.trace.json`` — or a single workload name
(``ra ht eb lb gn km``), traced under one variant (``--variant``,
default ``optimized``).  A merged ``metrics.json`` lands next to the
traces; see ``docs/observability.md``.

The ``fuzz`` target runs the schedule-exploration fuzzer
(:mod:`repro.sched.fuzz`): N seeded schedules per policy template per STM
variant, every commit history checked by the strict-serializability
oracle, failing schedules shrunk and written under ``--out``.  Exit code
is 1 when any schedule produced a violation.

The ``inject`` target runs the mutant-efficacy campaign
(:mod:`repro.faults.campaign`): each seeded protocol bug of
:data:`repro.faults.mutants.MUTANTS` under each checker, plus unmutated
baselines.  The JSON matrix lands at ``<out>/efficacy_matrix.json``; exit
code is 1 unless every mutant was caught and every baseline stayed clean.

The ``sanitize`` target runs one workload per variant with the online
:class:`~repro.faults.sanitizer.StmSanitizer` bound, optionally under
injected faults (``--fault SPEC``, repeatable; see
:meth:`repro.faults.plan.FaultSpec.parse`).  The first violation is
printed and the exit code is 1 when any variant failed.

Artifact-producing targets (``trace``) validate what they wrote with
:mod:`repro.telemetry.validate` and exit non-zero on the first invalid
artifact.

``--retries N`` / ``--timeout SECONDS`` / ``--resume PATH`` route the
figure/table sweeps (and ``inject``) through the supervision layer
(:mod:`repro.harness.supervisor`): bounded retry with backoff for
transient failures, per-job wall-clock timeouts (``--jobs`` > 1), and a
checkpoint journal at PATH so an interrupted sweep resumes where it
stopped (``all`` suffixes the journal per target).  Jobs that still
fail render as explicit FAILED gaps, a failure summary is printed, and
the exit code is 1 — see ``docs/resilience.md``.

The ``chaos`` target (:mod:`repro.harness.chaos`) is the supervision
layer's own proving ground: a supervised happy-path sweep, a sweep with
injected worker failures (error, SIGKILL, hang, armed fault), and a
kill-and-resume round-trip, each checked bit-identical against an
unsupervised reference run.  Exit code 1 when any phase fails.
"""

import argparse
import os
import sys
import time

from repro.harness import configs, experiments
from repro.harness.parallel import default_jobs
from repro.harness.profiling import maybe_profile

TARGETS = {
    "table1": experiments.table1,
    "fig2": experiments.fig2,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "table2": experiments.table2,
}

#: workload names the ``trace`` target accepts for single-run timelines —
#: the registry's sorted roster, so new workloads are traceable on arrival
from repro.workloads import workload_names as _workload_names

TRACE_WORKLOADS = _workload_names()


def run_fuzz(args, jobs):
    """Drive the interleaving fuzzer from the CLI; returns an exit code."""
    # imported here: the figure targets must not pay for the fuzz stack
    from repro.stm import STM_VARIANTS
    from repro.sched.fuzz import fuzz_schedules

    variants = STM_VARIANTS if args.variant == "all" else [args.variant]
    policies = tuple(args.policy) if args.policy else ("random", "adversarial")
    params = configs.test_workload_params(args.workload)
    failed = False
    reports = []
    for variant in variants:
        started = time.time()
        report = fuzz_schedules(
            args.workload,
            params,
            variant,
            seeds=args.seeds if args.seeds is not None else 8,
            policies=policies,
            jobs=jobs,
            artifact_dir=args.out,
        )
        print(report.render())
        print("[fuzz %s/%s in %.1fs, jobs=%d]"
              % (args.workload, variant, time.time() - started, jobs))
        print()
        reports.append(report)
        failed = failed or report.found_violation
    if args.metrics:
        from repro.telemetry import MetricRegistry, metric_name

        registry = MetricRegistry()
        for report in reports:
            prefix = metric_name("fuzz", report.workload, report.variant)
            registry.add(metric_name(prefix, "schedules"), len(report.outcomes))
            registry.add(metric_name(prefix, "failures"), len(report.failures))
            registry.add(metric_name(prefix, "commits"),
                         sum(o.commits for o in report.outcomes))
        registry.write_json(args.metrics)
        print("[metrics -> %s]" % args.metrics)
    return 1 if failed else 0


def _supervision_kwargs(args, target=None, multi_target=False):
    """Supervision kwargs for a sweep, or ``{}`` when no flag asked for it.

    Only non-empty when ``--retries``/``--timeout``/``--resume`` was
    given: the figure drivers (and their test stubs) keep their original
    signatures on the unsupervised path.  With multiple targets sharing
    one ``--resume`` path, each target journals to ``PATH.<target>``.
    """
    kwargs = {}
    if args.retries is not None or args.timeout is not None:
        from repro.harness.supervisor import SupervisorConfig

        config = SupervisorConfig()
        if args.retries is not None:
            config.max_retries = args.retries
        if args.timeout is not None:
            config.wall_timeout = args.timeout
        kwargs["supervise"] = config
    if args.resume:
        path = args.resume
        if multi_target and target:
            path = "%s.%s" % (path, target)
        kwargs["journal"] = path
    return kwargs


def run_inject(args, jobs):
    """Drive the mutant-efficacy campaign; returns an exit code."""
    # imported here: the figure targets must not pay for the faults stack
    from repro.common.fsio import atomic_write_json
    from repro.faults.campaign import run_campaign, render_matrix

    mutants = None
    if args.mutants != "all":
        mutants = [name.strip() for name in args.mutants.split(",") if name.strip()]
    checkers = [c.strip() for c in args.checkers.split(",") if c.strip()]
    out_dir = args.out or "fault-artifacts"
    os.makedirs(out_dir, exist_ok=True)
    seeds = args.seeds if args.seeds is not None else 2

    started = time.time()
    matrix = run_campaign(
        mutants=mutants,
        checkers=checkers,
        jobs=jobs,
        workload=args.workload,
        include_baselines=not args.no_baselines,
        seeds=seeds,
        **_supervision_kwargs(args)
    )
    print(render_matrix(matrix))
    matrix_path = os.path.join(out_dir, "efficacy_matrix.json")
    atomic_write_json(matrix_path, matrix)
    print("[matrix -> %s]" % matrix_path)
    print("[inject %d mutant(s) x %d checker(s) in %.1fs, jobs=%d]"
          % (len(matrix["mutants"]), len(checkers), time.time() - started, jobs))
    return 0 if matrix["ok"] else 1


def run_chaos(args, jobs):
    """Drive the chaos harness; returns an exit code."""
    # imported here: the figure targets must not pay for the chaos stack
    from repro.harness.chaos import run_chaos as chaos_harness

    started = time.time()
    report = chaos_harness(
        jobs=max(2, jobs),
        out_dir=args.out or "chaos-artifacts",
        wall_timeout=args.timeout if args.timeout is not None else 20.0,
    )
    print(report.render())
    print("[chaos in %.1fs, jobs=%d]" % (time.time() - started, max(2, jobs)))
    return 0 if report.ok else 1


def run_sanitize(args):
    """Run workloads under the online sanitizer; returns an exit code."""
    from repro.sched.explore import run_under_schedule
    from repro.stm import STM_VARIANTS

    variants = STM_VARIANTS if args.variant == "all" else [args.variant]
    params = configs.test_workload_params(args.workload)
    failed = False
    for variant in variants:
        outcome = run_under_schedule(
            args.workload,
            params,
            variant,
            sanitize=True,
            fault_plan=args.fault or None,
        )
        status = "clean" if outcome.ok else "FAIL[%s]" % outcome.failure
        print("sanitize %s/%s: %s (%d commits, %d aborts, %d fault(s) fired)"
              % (args.workload, variant, status, outcome.commits,
                 outcome.aborts, len(outcome.fired)))
        if not outcome.ok:
            failed = True
            if outcome.violations:
                first = outcome.violations[0]
                print("  first violation: %(check)s (tid=%(tid)s addr=%(addr)s): "
                      "%(detail)s" % first)
            elif outcome.detail:
                print("  %s" % outcome.detail.splitlines()[0])
    return 1 if failed else 0


def _validate_artifacts(paths):
    """Validate telemetry artifacts; print the first failure, return 0/1."""
    from repro.telemetry.validate import validate_file

    for path in paths:
        try:
            validate_file(path)
        except (OSError, ValueError) as exc:
            print("ARTIFACT INVALID %s: %s" % (path, exc), file=sys.stderr)
            return 1
    return 0


def _trace_workload(args, out_dir):
    """Trace one workload/variant pair; returns the telemetry session."""
    from repro.harness.runner import run_workload
    from repro.telemetry import Telemetry
    from repro.workloads import make_workload

    variant = "optimized" if args.variant == "all" else args.variant
    params = (configs.test_workload_params(args.experiment) if args.quick
              else configs.bench_workload_params(args.experiment))
    telemetry = Telemetry(
        timeline=True,
        meta={"workload": args.experiment, "variant": variant},
    )
    run_workload(
        make_workload(args.experiment, **params),
        variant,
        configs.bench_gpu(),
        stm_overrides=configs.egpgv_capacity(),
        telemetry=telemetry,
        allow_crash=True,
    )
    trace_path = os.path.join(
        out_dir, "%s-%s.trace.json" % (args.experiment, variant)
    )
    telemetry.write_timeline(trace_path)
    print("[trace -> %s]" % trace_path)
    return telemetry


def run_trace(args, jobs, parser):
    """Record Chrome-trace timelines + metrics; returns an exit code."""
    from repro.telemetry import MetricRegistry

    if not args.experiment:
        parser.error(
            "trace needs an experiment: one of %s, or a workload (%s)"
            % (", ".join(sorted(TARGETS)), " ".join(TRACE_WORKLOADS))
        )
    out_dir = args.out or "trace-artifacts"
    os.makedirs(out_dir, exist_ok=True)
    metrics_path = args.metrics or os.path.join(out_dir, "metrics.json")

    started = time.time()
    if args.experiment in TARGETS:
        registry = MetricRegistry()
        with maybe_profile(args.profile, out_path=args.profile_out):
            result = TARGETS[args.experiment](
                quick=args.quick, jobs=jobs,
                metrics=registry, timeline_dir=out_dir,
            )
        print(result.render())
        registry.write_json(metrics_path)
    elif args.experiment in TRACE_WORKLOADS:
        with maybe_profile(args.profile, out_path=args.profile_out):
            telemetry = _trace_workload(args, out_dir)
        telemetry.write_metrics(metrics_path)
    else:
        parser.error(
            "unknown trace experiment %r: expected one of %s, or a workload (%s)"
            % (args.experiment, ", ".join(sorted(TARGETS)),
               " ".join(TRACE_WORKLOADS))
        )
    print("[metrics -> %s]" % metrics_path)
    print("[trace %s in %.1fs, artifacts in %s]"
          % (args.experiment, time.time() - started, out_dir))
    artifacts = [metrics_path] + sorted(
        os.path.join(out_dir, name)
        for name in os.listdir(out_dir)
        if name.endswith(".trace.json")
    )
    return _validate_artifacts(artifacts)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation tables and figures, "
        "record telemetry timelines, or fuzz schedule interleavings.",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS)
        + ["all", "fuzz", "trace", "inject", "sanitize", "chaos"],
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="for the trace target: a figure/table name or a workload name",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down geometry for a fast pass"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a cProfile summary of each target (driving process only)",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="dump the raw cProfile data to FILE (loadable with pstats.Stats)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the merged telemetry metric registry as JSON to FILE",
    )
    parser.add_argument(
        "--expdb", default=None, metavar="PATH",
        help="record each figure/table sweep (spec fingerprints, merged "
        "metrics, failure taxonomy, provenance) in the experiment database "
        "at PATH ('default' for $REPRO_EXPDB or expdb/experiments.sqlite)",
    )
    fuzz_group = parser.add_argument_group("fuzz target")
    fuzz_group.add_argument(
        "--workload", default="ra",
        help="workload to fuzz (default: ra; uses unit-test geometry)",
    )
    fuzz_group.add_argument(
        "--variant", default="all",
        help="STM variant to fuzz or trace, or 'all' "
        "(default; trace reads it as 'optimized')",
    )
    fuzz_group.add_argument(
        "--seeds", type=int, default=None, metavar="N",
        help="seeds per seeded policy template (default: 8 for fuzz, "
        "2 for inject's fuzzer checker)",
    )
    fuzz_group.add_argument(
        "--policy", action="append", metavar="SPEC",
        help="policy template(s) to fuzz with; repeatable "
        "(default: random + adversarial)",
    )
    fuzz_group.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: failing schedules for fuzz, timeline "
        "traces for trace (default: trace-artifacts), efficacy matrix "
        "for inject (default: fault-artifacts)",
    )
    fault_group = parser.add_argument_group("inject / sanitize targets")
    fault_group.add_argument(
        "--mutants", default="all", metavar="NAMES",
        help="comma-separated mutant names for inject, or 'all' (default)",
    )
    fault_group.add_argument(
        "--checkers", default="oracle,sanitizer,fuzzer", metavar="NAMES",
        help="comma-separated checker subset for inject "
        "(default: oracle,sanitizer,fuzzer)",
    )
    fault_group.add_argument(
        "--no-baselines", action="store_true",
        help="inject: skip the unmutated false-positive baseline runs",
    )
    fault_group.add_argument(
        "--fault", action="append", metavar="SPEC",
        help="sanitize: fault spec 'kind:key=value,...' to inject; repeatable",
    )
    resilience_group = parser.add_argument_group("resilience (supervision)")
    resilience_group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry transient job failures up to N times with backoff "
        "(routes the sweep through the supervisor)",
    )
    resilience_group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock timeout; the worker is killed and the "
        "attempt retried as transient (needs --jobs > 1); for chaos: "
        "the hung-worker reaping deadline (default 20)",
    )
    resilience_group.add_argument(
        "--resume", default=None, metavar="PATH",
        help="checkpoint journal: completed jobs are recorded at PATH and "
        "skipped on re-run ('all' journals to PATH.<target>)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.experiment is not None and args.target != "trace":
        parser.error("the experiment argument only applies to the trace target")

    if args.target == "fuzz":
        return run_fuzz(args, jobs)
    if args.target == "trace":
        return run_trace(args, jobs, parser)
    if args.target == "inject":
        return run_inject(args, jobs)
    if args.target == "sanitize":
        return run_sanitize(args)
    if args.target == "chaos":
        return run_chaos(args, jobs)

    registry = None
    if args.metrics:
        from repro.telemetry import MetricRegistry

        registry = MetricRegistry()
    names = sorted(TARGETS) if args.target == "all" else [args.target]
    failures = []
    for name in names:
        started = time.time()
        extra = _supervision_kwargs(args, target=name,
                                    multi_target=len(names) > 1)
        recorder = None
        if args.expdb:
            from repro.expdb import SweepRecorder, default_db_path

            db_path = (default_db_path() if args.expdb == "default"
                       else args.expdb)
            recorder = SweepRecorder(db_path, name)
            extra["recorder"] = recorder
        with maybe_profile(args.profile, out_path=args.profile_out):
            result = TARGETS[name](quick=args.quick, jobs=jobs,
                                   metrics=registry, **extra)
        print(result.render())
        print("[%s regenerated in %.1fs, jobs=%d]" % (name, time.time() - started, jobs))
        if recorder is not None and recorder.run_id is not None:
            print("[expdb run %d (%s)]"
                  % (recorder.run_id, recorder.run_key[:12]))
        print()
        failures.extend(
            (name, failure) for failure in getattr(result, "failures", ())
        )
    if registry is not None:
        registry.write_json(args.metrics)
        print("[metrics -> %s]" % args.metrics)
    if failures:
        print("%d job(s) failed across %s:"
              % (len(failures), ", ".join(names)), file=sys.stderr)
        for name, failure in failures:
            print("  %s %r: %s" % (name, failure.key, failure.brief()),
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
