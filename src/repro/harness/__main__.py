"""Command-line entry point: regenerate any table or figure, or fuzz.

Usage::

    python -m repro.harness table1 [--quick]
    python -m repro.harness fig2 [--quick] [--jobs N]
    python -m repro.harness fig3 [--quick]
    python -m repro.harness fig4 [--quick]
    python -m repro.harness fig5 [--quick]
    python -m repro.harness table2 [--quick]
    python -m repro.harness all --quick --jobs 4
    python -m repro.harness fuzz --workload ra --variant all --seeds 8 \\
        --policy random --policy adversarial --jobs 4 --out fuzz-artifacts

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) fans the
independent runs of each sweep out over N worker processes; results are
identical to a serial run.  ``--profile`` prints a cProfile summary of the
driving process after each target (use with ``--jobs 1``).

The ``fuzz`` target runs the schedule-exploration fuzzer
(:mod:`repro.sched.fuzz`): N seeded schedules per policy template per STM
variant, every commit history checked by the strict-serializability
oracle, failing schedules shrunk and written under ``--out``.  Exit code
is 1 when any schedule produced a violation.
"""

import argparse
import sys
import time

from repro.harness import configs, experiments
from repro.harness.parallel import default_jobs
from repro.harness.profiling import maybe_profile

TARGETS = {
    "table1": experiments.table1,
    "fig2": experiments.fig2,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "table2": experiments.table2,
}


def run_fuzz(args, jobs):
    """Drive the interleaving fuzzer from the CLI; returns an exit code."""
    # imported here: the figure targets must not pay for the fuzz stack
    from repro.stm import STM_VARIANTS
    from repro.sched.fuzz import fuzz_schedules

    variants = STM_VARIANTS if args.variant == "all" else [args.variant]
    policies = tuple(args.policy) if args.policy else ("random", "adversarial")
    params = configs.test_workload_params(args.workload)
    failed = False
    for variant in variants:
        started = time.time()
        report = fuzz_schedules(
            args.workload,
            params,
            variant,
            seeds=args.seeds,
            policies=policies,
            jobs=jobs,
            artifact_dir=args.out,
        )
        print(report.render())
        print("[fuzz %s/%s in %.1fs, jobs=%d]"
              % (args.workload, variant, time.time() - started, jobs))
        print()
        failed = failed or report.found_violation
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation tables and figures, "
        "or fuzz schedule interleavings.",
    )
    parser.add_argument("target", choices=sorted(TARGETS) + ["all", "fuzz"])
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down geometry for a fast pass"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a cProfile summary of each target (driving process only)",
    )
    fuzz_group = parser.add_argument_group("fuzz target")
    fuzz_group.add_argument(
        "--workload", default="ra",
        help="workload to fuzz (default: ra; uses unit-test geometry)",
    )
    fuzz_group.add_argument(
        "--variant", default="all",
        help="STM variant to fuzz, or 'all' (default)",
    )
    fuzz_group.add_argument(
        "--seeds", type=int, default=8, metavar="N",
        help="seeds per seeded policy template (default: 8)",
    )
    fuzz_group.add_argument(
        "--policy", action="append", metavar="SPEC",
        help="policy template(s) to fuzz with; repeatable "
        "(default: random + adversarial)",
    )
    fuzz_group.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for failing-schedule artifacts (JSON traces + ledger)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.target == "fuzz":
        return run_fuzz(args, jobs)

    names = sorted(TARGETS) if args.target == "all" else [args.target]
    for name in names:
        started = time.time()
        with maybe_profile(args.profile):
            result = TARGETS[name](quick=args.quick, jobs=jobs)
        print(result.render())
        print("[%s regenerated in %.1fs, jobs=%d]" % (name, time.time() - started, jobs))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
