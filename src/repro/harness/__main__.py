"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.harness table1 [--quick]
    python -m repro.harness fig2 [--quick]
    python -m repro.harness fig3 [--quick]
    python -m repro.harness fig4 [--quick]
    python -m repro.harness fig5 [--quick]
    python -m repro.harness table2 [--quick]
    python -m repro.harness all --quick
"""

import argparse
import sys
import time

from repro.harness import experiments

TARGETS = {
    "table1": experiments.table1,
    "fig2": experiments.fig2,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "table2": experiments.table2,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("target", choices=sorted(TARGETS) + ["all"])
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down geometry for a fast pass"
    )
    args = parser.parse_args(argv)

    names = sorted(TARGETS) if args.target == "all" else [args.target]
    for name in names:
        started = time.time()
        result = TARGETS[name](quick=args.quick)
        print(result.render())
        print("[%s regenerated in %.1fs]" % (name, time.time() - started))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
