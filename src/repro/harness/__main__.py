"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.harness table1 [--quick]
    python -m repro.harness fig2 [--quick] [--jobs N]
    python -m repro.harness fig3 [--quick]
    python -m repro.harness fig4 [--quick]
    python -m repro.harness fig5 [--quick]
    python -m repro.harness table2 [--quick]
    python -m repro.harness all --quick --jobs 4

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) fans the
independent runs of each sweep out over N worker processes; results are
identical to a serial run.  ``--profile`` prints a cProfile summary of the
driving process after each target (use with ``--jobs 1``).
"""

import argparse
import sys
import time

from repro.harness import experiments
from repro.harness.parallel import default_jobs
from repro.harness.profiling import maybe_profile

TARGETS = {
    "table1": experiments.table1,
    "fig2": experiments.fig2,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "table2": experiments.table2,
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("target", choices=sorted(TARGETS) + ["all"])
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down geometry for a fast pass"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a cProfile summary of each target (driving process only)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")

    names = sorted(TARGETS) if args.target == "all" else [args.target]
    for name in names:
        started = time.time()
        with maybe_profile(args.profile):
            result = TARGETS[name](quick=args.quick, jobs=jobs)
        print(result.render())
        print("[%s regenerated in %.1fs, jobs=%d]" % (name, time.time() - started, jobs))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
