"""Command-line entry point: regenerate any table or figure, trace, or fuzz.

Usage::

    python -m repro.harness table1 [--quick]
    python -m repro.harness fig2 [--quick] [--jobs N] [--metrics out.json]
    python -m repro.harness fig3 [--quick]
    python -m repro.harness fig4 [--quick]
    python -m repro.harness fig5 [--quick]
    python -m repro.harness table2 [--quick]
    python -m repro.harness all --quick --jobs 4
    python -m repro.harness trace fig5 --quick --out trace-artifacts
    python -m repro.harness trace km --variant hv-sorting --quick
    python -m repro.harness fuzz --workload ra --variant all --seeds 8 \\
        --policy random --policy adversarial --jobs 4 --out fuzz-artifacts

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) fans the
independent runs of each sweep out over N worker processes; results are
identical to a serial run.  ``--profile`` prints a cProfile summary of the
driving process after each target (use with ``--jobs 1``);
``--profile-out FILE`` dumps the raw profile for ``pstats``/snakeviz.

``--metrics FILE`` writes the run's merged telemetry registry (counters,
gauges, histograms; see :mod:`repro.telemetry`) as JSON.  On figure/table
targets it turns on per-worker telemetry and aggregates across processes.

The ``trace`` target records simulated-time Chrome-trace timelines
(open them in ``chrome://tracing`` or https://ui.perfetto.dev).  Its
``experiment`` argument is either a figure/table name — every run of that
sweep gets its own ``<out>/<key>.trace.json`` — or a single workload name
(``ra ht eb lb gn km``), traced under one variant (``--variant``,
default ``optimized``).  A merged ``metrics.json`` lands next to the
traces; see ``docs/observability.md``.

The ``fuzz`` target runs the schedule-exploration fuzzer
(:mod:`repro.sched.fuzz`): N seeded schedules per policy template per STM
variant, every commit history checked by the strict-serializability
oracle, failing schedules shrunk and written under ``--out``.  Exit code
is 1 when any schedule produced a violation.
"""

import argparse
import os
import sys
import time

from repro.harness import configs, experiments
from repro.harness.parallel import default_jobs
from repro.harness.profiling import maybe_profile

TARGETS = {
    "table1": experiments.table1,
    "fig2": experiments.fig2,
    "fig3": experiments.fig3,
    "fig4": experiments.fig4,
    "fig5": experiments.fig5,
    "table2": experiments.table2,
}

#: workload names the ``trace`` target accepts for single-run timelines
TRACE_WORKLOADS = ("ra", "ht", "eb", "lb", "gn", "km")


def run_fuzz(args, jobs):
    """Drive the interleaving fuzzer from the CLI; returns an exit code."""
    # imported here: the figure targets must not pay for the fuzz stack
    from repro.stm import STM_VARIANTS
    from repro.sched.fuzz import fuzz_schedules

    variants = STM_VARIANTS if args.variant == "all" else [args.variant]
    policies = tuple(args.policy) if args.policy else ("random", "adversarial")
    params = configs.test_workload_params(args.workload)
    failed = False
    reports = []
    for variant in variants:
        started = time.time()
        report = fuzz_schedules(
            args.workload,
            params,
            variant,
            seeds=args.seeds,
            policies=policies,
            jobs=jobs,
            artifact_dir=args.out,
        )
        print(report.render())
        print("[fuzz %s/%s in %.1fs, jobs=%d]"
              % (args.workload, variant, time.time() - started, jobs))
        print()
        reports.append(report)
        failed = failed or report.found_violation
    if args.metrics:
        from repro.telemetry import MetricRegistry, metric_name

        registry = MetricRegistry()
        for report in reports:
            prefix = metric_name("fuzz", report.workload, report.variant)
            registry.add(metric_name(prefix, "schedules"), len(report.outcomes))
            registry.add(metric_name(prefix, "failures"), len(report.failures))
            registry.add(metric_name(prefix, "commits"),
                         sum(o.commits for o in report.outcomes))
        registry.write_json(args.metrics)
        print("[metrics -> %s]" % args.metrics)
    return 1 if failed else 0


def _trace_workload(args, out_dir):
    """Trace one workload/variant pair; returns the telemetry session."""
    from repro.harness.runner import run_workload
    from repro.telemetry import Telemetry
    from repro.workloads import make_workload

    variant = "optimized" if args.variant == "all" else args.variant
    params = (configs.test_workload_params(args.experiment) if args.quick
              else configs.bench_workload_params(args.experiment))
    telemetry = Telemetry(
        timeline=True,
        meta={"workload": args.experiment, "variant": variant},
    )
    run_workload(
        make_workload(args.experiment, **params),
        variant,
        configs.bench_gpu(),
        stm_overrides=configs.egpgv_capacity(),
        telemetry=telemetry,
        allow_crash=True,
    )
    trace_path = os.path.join(
        out_dir, "%s-%s.trace.json" % (args.experiment, variant)
    )
    telemetry.write_timeline(trace_path)
    print("[trace -> %s]" % trace_path)
    return telemetry


def run_trace(args, jobs, parser):
    """Record Chrome-trace timelines + metrics; returns an exit code."""
    from repro.telemetry import MetricRegistry

    if not args.experiment:
        parser.error(
            "trace needs an experiment: one of %s, or a workload (%s)"
            % (", ".join(sorted(TARGETS)), " ".join(TRACE_WORKLOADS))
        )
    out_dir = args.out or "trace-artifacts"
    os.makedirs(out_dir, exist_ok=True)
    metrics_path = args.metrics or os.path.join(out_dir, "metrics.json")

    started = time.time()
    if args.experiment in TARGETS:
        registry = MetricRegistry()
        with maybe_profile(args.profile, out_path=args.profile_out):
            result = TARGETS[args.experiment](
                quick=args.quick, jobs=jobs,
                metrics=registry, timeline_dir=out_dir,
            )
        print(result.render())
        registry.write_json(metrics_path)
    elif args.experiment in TRACE_WORKLOADS:
        with maybe_profile(args.profile, out_path=args.profile_out):
            telemetry = _trace_workload(args, out_dir)
        telemetry.write_metrics(metrics_path)
    else:
        parser.error(
            "unknown trace experiment %r: expected one of %s, or a workload (%s)"
            % (args.experiment, ", ".join(sorted(TARGETS)),
               " ".join(TRACE_WORKLOADS))
        )
    print("[metrics -> %s]" % metrics_path)
    print("[trace %s in %.1fs, artifacts in %s]"
          % (args.experiment, time.time() - started, out_dir))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation tables and figures, "
        "record telemetry timelines, or fuzz schedule interleavings.",
    )
    parser.add_argument("target", choices=sorted(TARGETS) + ["all", "fuzz", "trace"])
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="for the trace target: a figure/table name or a workload name",
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down geometry for a fast pass"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a cProfile summary of each target (driving process only)",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="FILE",
        help="dump the raw cProfile data to FILE (loadable with pstats.Stats)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the merged telemetry metric registry as JSON to FILE",
    )
    fuzz_group = parser.add_argument_group("fuzz target")
    fuzz_group.add_argument(
        "--workload", default="ra",
        help="workload to fuzz (default: ra; uses unit-test geometry)",
    )
    fuzz_group.add_argument(
        "--variant", default="all",
        help="STM variant to fuzz or trace, or 'all' "
        "(default; trace reads it as 'optimized')",
    )
    fuzz_group.add_argument(
        "--seeds", type=int, default=8, metavar="N",
        help="seeds per seeded policy template (default: 8)",
    )
    fuzz_group.add_argument(
        "--policy", action="append", metavar="SPEC",
        help="policy template(s) to fuzz with; repeatable "
        "(default: random + adversarial)",
    )
    fuzz_group.add_argument(
        "--out", default=None, metavar="DIR",
        help="artifact directory: failing schedules for fuzz, timeline "
        "traces for trace (default: trace-artifacts)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.experiment is not None and args.target != "trace":
        parser.error("the experiment argument only applies to the trace target")

    if args.target == "fuzz":
        return run_fuzz(args, jobs)
    if args.target == "trace":
        return run_trace(args, jobs, parser)

    registry = None
    if args.metrics:
        from repro.telemetry import MetricRegistry

        registry = MetricRegistry()
    names = sorted(TARGETS) if args.target == "all" else [args.target]
    for name in names:
        started = time.time()
        with maybe_profile(args.profile, out_path=args.profile_out):
            result = TARGETS[name](quick=args.quick, jobs=jobs, metrics=registry)
        print(result.render())
        print("[%s regenerated in %.1fs, jobs=%d]" % (name, time.time() - started, jobs))
        print()
    if registry is not None:
        registry.write_json(args.metrics)
        print("[metrics -> %s]" % args.metrics)
    return 0


if __name__ == "__main__":
    sys.exit(main())
