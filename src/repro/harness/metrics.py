"""Metric helpers shared by experiments, benchmarks and tests."""


def speedup(baseline_cycles, cycles):
    """Speedup of ``cycles`` relative to ``baseline_cycles``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / cycles


def geometric_mean(values):
    """Geometric mean (the usual summary for speedup collections)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty collection")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric_mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def crossover_index(series_a, series_b):
    """First index where ``series_a`` strictly overtakes ``series_b``.

    Used to locate the HV/TBV crossover points of Figure 4.  Semantics,
    spelled out because sweep series are ragged:

    * Only the overlapping prefix is compared (``zip`` stops at the
      shorter series); a crossover past the end of either is not found.
    * An index where either value is ``None`` (a crashed run — e.g.
      EGPGV past its static capacity) is skipped entirely, including
      *leading* ``None`` pairs: the first comparable index can be deep
      into the series.
    * The comparison is strict (``a > b``): a tie is not a crossover,
      so series that only ever touch return ``None``.

    Returns the index into the zipped overlap, or ``None`` if ``series_a``
    never strictly exceeds ``series_b`` at any comparable index.
    """
    for index, (a, b) in enumerate(zip(series_a, series_b)):
        if a is None or b is None:
            continue  # crashed / missing point: not comparable, skip
        if a > b:
            return index
    return None
