"""Metric helpers shared by experiments, benchmarks and tests."""


def speedup(baseline_cycles, cycles):
    """Speedup of ``cycles`` relative to ``baseline_cycles``."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / cycles


def geometric_mean(values):
    """Geometric mean (the usual summary for speedup collections)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty collection")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric_mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))


def crossover_index(series_a, series_b):
    """First index where series_a overtakes series_b (None if never).

    Used to locate the HV/TBV crossover points of Figure 4.
    """
    for index, (a, b) in enumerate(zip(series_a, series_b)):
        if a is not None and b is not None and a > b:
            return index
    return None
