"""Evaluation harness: runs workload x runtime combinations and regenerates
every table and figure of the paper's evaluation section (see DESIGN.md's
experiment index)."""

from repro.harness.runner import RunResult, run_workload

__all__ = ["RunResult", "run_workload"]
