"""Chaos harness: prove the supervision layer survives what it claims to.

``python -m repro.harness chaos`` runs three phases against one small
reference sweep and checks each against the uninterrupted, unsupervised
run of the same specs:

1. **supervised happy path** — the supervisor adds retries, timeouts and
   a journal *capability* but must not change a clean sweep's output:
   results bit-identical, every job a first-attempt success, zero
   retries.
2. **worker chaos** — a :class:`~repro.harness.supervisor.ChaosPlan`
   makes four jobs misbehave on their first attempt (raise, SIGKILL
   the worker, hang past the wall timeout, run with an armed
   ``warp_stall`` fault and a tight cycle budget).  Every job must
   still converge to the reference result via retry, and the
   ``supervisor.*`` counters must account for each injected failure.
3. **kill-and-resume** — a child process runs the sweep serially with a
   journal and SIGKILLs *itself* partway through; the parent resumes
   from the journal and must produce results (and merged telemetry)
   bit-identical to the reference, re-running only the jobs the journal
   never recorded.

The harness returns a :class:`ChaosReport`; the CLI exits non-zero when
any phase failed.  CI runs this as the ``chaos-smoke`` job.
"""

import os
import signal

from repro.harness import configs
from repro.harness.journal import SweepJournal
from repro.harness.parallel import JobSpec, execute_job, merge_job_metrics, run_jobs
from repro.harness.supervisor import ChaosPlan, SupervisorConfig, run_supervised
from repro.telemetry import MetricRegistry

#: (workload, variant) pairs of the reference sweep — small unit-test
#: geometries, a few seconds total, covering three runtime families
CASES = (
    ("ra", "cgl"),
    ("ra", "hv-sorting"),
    ("ra", "optimized"),
    ("ht", "cgl"),
    ("ht", "hv-sorting"),
    ("ht", "optimized"),
)


def chaos_specs():
    """The reference sweep's spec list (telemetry on: phase 3 compares
    merged registries, not just run results)."""
    return [
        JobSpec(
            (workload, variant), workload,
            configs.test_workload_params(workload), variant,
            num_locks=64, telemetry=True,
        )
        for workload, variant in CASES
    ]


def _runs_equal(a, b):
    """Bit-identity of two JobResults: run fields and worker metrics."""
    if a.failed or b.failed:
        return False
    run_a, run_b = a.run, b.run
    if (run_a.cycles, run_a.commits, run_a.abort_rate) != (
            run_b.cycles, run_b.commits, run_b.abort_rate):
        return False
    if run_a.stats != run_b.stats:
        return False
    if [k.cycles for k in run_a.kernel_results] != [
            k.cycles for k in run_b.kernel_results]:
        return False
    return a.metrics == b.metrics


def _diff(reference, results):
    """Keys whose results differ from the reference (in spec order)."""
    return [
        ref.key
        for ref, out in zip(reference, results)
        if out is None or not _runs_equal(ref, out)
    ]


class ChaosReport:
    """Phase-by-phase outcome of one chaos run."""

    def __init__(self):
        self.phases = []  # (name, ok, detail)

    def add(self, name, ok, detail):
        self.phases.append((name, bool(ok), detail))

    @property
    def ok(self):
        return all(ok for _, ok, _ in self.phases)

    def as_dict(self):
        return {
            "ok": self.ok,
            "phases": [
                {"name": name, "ok": ok, "detail": detail}
                for name, ok, detail in self.phases
            ],
        }

    def render(self):
        lines = ["chaos harness: %d phase(s)" % len(self.phases)]
        for name, ok, detail in self.phases:
            lines.append("  [%s] %s: %s" % ("ok" if ok else "FAIL", name, detail))
        lines.append("chaos ok: %s" % ("yes" if self.ok else "NO"))
        return "\n".join(lines)


class _KillAfter:
    """Executor that SIGKILLs its own process after ``n`` completed jobs —
    the simulated operator/OOM-killer of the kill-and-resume phase."""

    def __init__(self, n):
        self.n = n
        self.done = 0

    def __call__(self, spec):
        if self.done >= self.n:
            os.kill(os.getpid(), signal.SIGKILL)
        result = execute_job(spec)
        self.done += 1
        return result


def _killed_sweep(journal_path, kill_after):
    """Child-process main for phase 3: journal the sweep, die mid-way."""
    run_supervised(
        chaos_specs(), jobs=1, journal=journal_path,
        executor=_KillAfter(kill_after),
    )


def _phase_happy_path(report, reference, specs):
    registry = MetricRegistry()
    results = run_supervised(
        specs, jobs=1, config=SupervisorConfig(max_retries=2),
        metrics=registry,
    )
    bad = _diff(reference, results)
    counters = registry.as_dict()["counters"]
    clean = (
        counters.get("supervisor.first_attempt_successes") == len(specs)
        and counters.get("supervisor.retries") is None
        and counters.get("supervisor.jobs.succeeded") == len(specs)
    )
    report.add(
        "supervised happy path",
        not bad and clean,
        "results match reference, %d/%d first-attempt successes, 0 retries"
        % (counters.get("supervisor.first_attempt_successes", 0), len(specs))
        if not bad else "results diverge for %s" % bad,
    )


def _phase_worker_chaos(report, reference, specs, jobs, wall_timeout):
    plan = (
        ChaosPlan()
        .add(specs[0].key, "error")
        .add(specs[1].key, "sigkill")
        .add(specs[2].key, "hang", hang_seconds=10 * wall_timeout)
        .add(
            specs[3].key, "fault",
            faults=["warp_stall:sm=0,warp=0,after=10,duration=2000000"],
            gpu_overrides=dict(max_steps=20_000),
        )
    )
    registry = MetricRegistry()
    config = SupervisorConfig(
        wall_timeout=wall_timeout, max_retries=2,
        backoff_base=0.01, backoff_cap=0.05,
    )
    results = run_supervised(
        specs, jobs=max(2, jobs), config=config, chaos=plan, metrics=registry,
    )
    bad = _diff(reference, results)
    counters = registry.as_dict()["counters"]
    retries = counters.get("supervisor.retries", 0)
    accounted = (
        retries >= len(plan)
        and counters.get("supervisor.jobs.succeeded") == len(specs)
        and counters.get("supervisor.timeouts.wall", 0) >= 1
        and counters.get("supervisor.failures.worker-lost", 0) == 0
    )
    report.add(
        "worker chaos",
        not bad and accounted,
        "results diverge for %s" % bad if bad else
        "%d injected failures retried to clean convergence "
        "(%d retries, %d wall timeout(s))"
        % (len(plan), retries, counters.get("supervisor.timeouts.wall", 0)),
    )


def _phase_kill_and_resume(report, reference, specs, journal_path, kill_after):
    import multiprocessing as mp

    ctx = mp.get_context()
    child = ctx.Process(target=_killed_sweep, args=(journal_path, kill_after))
    child.start()
    child.join()
    if child.exitcode != -signal.SIGKILL:
        report.add(
            "kill and resume", False,
            "child expected to die by SIGKILL, exitcode %r" % child.exitcode,
        )
        return
    journaled = len(SweepJournal(journal_path).load())
    registry = MetricRegistry()
    results = run_supervised(
        specs, jobs=1, journal=journal_path, metrics=registry,
    )
    bad = _diff(reference, results)
    counters = registry.as_dict()["counters"]
    resumed = counters.get("supervisor.jobs.resumed", 0)
    merged_ref = merge_job_metrics(reference).as_dict()
    merged_now = merge_job_metrics(results).as_dict()
    ok = (
        not bad
        and journaled == kill_after
        and resumed == kill_after
        and merged_ref == merged_now
    )
    report.add(
        "kill and resume",
        ok,
        "results diverge for %s" % bad if bad else
        "child killed after %d job(s), resume re-ran %d and merged "
        "bit-identical to the uninterrupted sweep"
        % (journaled, len(specs) - resumed),
    )


def run_chaos(jobs=2, out_dir="chaos-artifacts", kill_after=2,
              wall_timeout=20.0):
    """Run the three chaos phases; returns a :class:`ChaosReport`.

    ``jobs`` sizes the worker pool of the chaos phase (floored at 2: the
    sigkill/hang events need killable workers); ``kill_after`` how many
    jobs the phase-3 child completes before killing itself;
    ``wall_timeout`` the reaping deadline for the hung worker.  The
    journal and a JSON copy of the report land under ``out_dir``.
    """
    from repro.common.fsio import atomic_write_json

    os.makedirs(out_dir, exist_ok=True)
    journal_path = os.path.join(out_dir, "chaos.journal")
    if os.path.exists(journal_path):
        os.remove(journal_path)

    report = ChaosReport()
    specs = chaos_specs()
    reference = run_jobs(chaos_specs(), jobs=1)
    failed_reference = [r.key for r in reference if r.failed]
    if failed_reference:
        report.add("reference sweep", False,
                   "reference jobs failed: %s" % failed_reference)
        return report
    report.add("reference sweep", True,
               "%d jobs clean (unsupervised serial)" % len(reference))

    _phase_happy_path(report, reference, specs)
    _phase_worker_chaos(report, reference, chaos_specs(), jobs, wall_timeout)
    _phase_kill_and_resume(
        report, reference, chaos_specs(), journal_path, kill_after
    )
    atomic_write_json(os.path.join(out_dir, "chaos_report.json"),
                      report.as_dict())
    return report
