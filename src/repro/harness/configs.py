"""Scaled geometries with the paper's ratios (DESIGN.md section 6).

The paper ran a C2070 (14 SMs, 32-lane warps), 1M version locks, workloads
with 1M-64M words of shared data and up to 65,536 threads.  We keep every
*ratio* — locks : shared data, threads : SMs — and scale absolute sizes by
~1/1024 so a pure-Python simulation finishes in seconds: Ki where the paper
has Mi.
"""

from repro.gpu.config import GpuConfig

#: default version-lock table (paper: 1 Mi; here 8 Ki — scaled so that a
#: warp's commit-time lock footprint relative to the table, which is what
#: sets the intra-warp collision rate, stays in the paper's "modest
#: conflicts" regime)
DEFAULT_NUM_LOCKS = 8192


def paper_gpu(max_steps=60_000_000, warp_size=32):
    """A Fermi-C2070-shaped device."""
    return GpuConfig(warp_size=warp_size, num_sms=14, max_steps=max_steps)


def bench_gpu():
    """Device geometry used by the benchmark harness."""
    return paper_gpu()


def unit_gpu(max_steps=8_000_000):
    """Small device for workload unit tests."""
    return GpuConfig(
        warp_size=8,
        num_sms=4,
        max_steps=max_steps,
        strict_lockstep=True,
        check_bounds=True,
    )


# ----------------------------------------------------------------------
# Workload parameter sets
# ----------------------------------------------------------------------

def bench_workload_params(name):
    """Benchmark-scale parameters (paper geometry / ~1024).

    Shared-data sizes follow the paper's Table 1 relationships: RA 8 Ki and
    LB ~1.75 Ki exceed the 1 Ki lock table (HV pays off); HT/GN/KM stay at
    or below it (TBV suffices); KM's shared data is tiny and hot.
    """
    if name == "ra":
        # shared / locks = 8, as in the paper (8M / 1M)
        return dict(array_size=65536, grid=16, block=32, txs_per_thread=2,
                    actions_per_tx=2)
    if name == "ht":
        return dict(num_buckets=8192, grid=16, block=32, txs_per_thread=2,
                    inserts_per_tx=2)
    if name == "eb":
        return dict(hot_size=16384, grid=16, block=32, txs_per_thread=2,
                    reads_per_tx=4, writes_per_tx=2)
    if name == "lb":
        # cells / locks = 1.75, as in the paper (1.75M / 1M)
        return dict(width=120, height=120, grid_blocks=28, block_threads=32,
                    paths_per_router=4, bfs_cost_factor=8,
                    max_route_distance=12)
    if name == "gn":
        return dict(table_size=4096, grid=16, block=32, segments_per_thread=2,
                    segment_space=1024, match_grid=4, match_block=32)
    if name == "km":
        return dict(num_points=512, dims=4, k=8, grid=8, block=32,
                    compute_factor=40)
    if name == "lg":
        # accounts / locks = 2: moderately hot ledger; skew 0.8 puts ~40%
        # of traffic on the hottest 1% of accounts
        return dict(num_accounts=16384, grid=16, block=32, txs_per_thread=2,
                    skew=0.8)
    if name == "mg":
        # the sharded ledger: milder account skew than lg (contention
        # comes from the remote fraction, not one hot account) and 30%
        # cross-device destinations by default
        return dict(num_accounts=16384, grid=16, block=32, txs_per_thread=2,
                    skew=0.6, remote_frac=0.3)
    if name == "cns":
        # few hot decision words under many proposers: the byzantine
        # containment workload (arXiv 2503.12788 geometry, scaled)
        return dict(objects=16, grid=16, block=32)
    raise ValueError("no benchmark parameters for workload %r" % name)


def test_workload_params(name):
    """Tiny parameters for the unit-test suite."""
    if name == "ra":
        return dict(array_size=256, grid=2, block=16, txs_per_thread=2, actions_per_tx=2)
    if name == "ht":
        return dict(num_buckets=32, grid=2, block=16, txs_per_thread=2, inserts_per_tx=2)
    if name == "eb":
        return dict(hot_size=128, grid=2, block=16, txs_per_thread=2,
                    reads_per_tx=2, writes_per_tx=1)
    if name == "lb":
        return dict(width=16, height=16, grid_blocks=4, block_threads=8,
                    paths_per_router=1)
    if name == "gn":
        return dict(table_size=128, grid=2, block=16, segments_per_thread=2,
                    match_grid=2, match_block=8)
    if name == "km":
        return dict(num_points=64, dims=2, k=4, grid=2, block=8)
    if name == "lg":
        return dict(num_accounts=128, grid=2, block=16, txs_per_thread=2,
                    skew=0.8)
    if name == "mg":
        # grid=4: covers every SM of the 2-device explore geometry (2 SMs
        # per device), so both devices execute blocks
        return dict(num_accounts=256, grid=4, block=16, txs_per_thread=2,
                    skew=0.6, remote_frac=0.3)
    if name == "cns":
        return dict(objects=4, grid=2, block=16)
    raise ValueError("no test parameters for workload %r" % name)


def egpgv_capacity():
    """STM-EGPGV static capacities: metadata for 4 concurrent block
    transactions.  Figure 2 runs EGPGV at this maximum concurrency (total
    work held constant — see :func:`egpgv_workload_params`); the Figure 3
    thread sweep crashes past 128 threads, reproducing the paper's
    "crashes at relatively small numbers of threads"."""
    return dict(egpgv_max_blocks=4, egpgv_max_threads_per_block=64)


def egpgv_workload_params(name):
    """Bench parameters folded into EGPGV's 4-block concurrency limit.

    The total transactional work of :func:`bench_workload_params` is
    preserved; only the launch geometry shrinks to what EGPGV's static
    metadata supports (the paper likewise ran each system at a
    configuration it could execute).
    """
    params = bench_workload_params(name)
    if name == "lb":
        total_paths = params["grid_blocks"] * params["paths_per_router"]
        params["grid_blocks"] = 4
        params["paths_per_router"] = total_paths // 4
        return params
    if name == "gn":
        total_segments = params["grid"] * params["block"] * params["segments_per_thread"]
        params["grid"] = 4
        params["segments_per_thread"] = total_segments // (4 * params["block"])
        params["match_grid"] = 4
        return params
    if name == "km":
        params["grid"] = 4  # point loop strides over the grid, work unchanged
        return params
    factor = max(1, params["grid"] // 4)
    params["grid"] = min(params["grid"], 4)
    params["txs_per_thread"] *= factor
    return params
