"""Supervised job execution: timeouts, retry with backoff, chaos injection.

:func:`run_supervised` wraps the same (specs -> results in spec order)
contract as :func:`~repro.harness.parallel.run_jobs` in a supervision
layer that keeps a sweep alive through the failures a long experiment
campaign actually meets:

* **wall-clock timeouts** — a worker that stops making wall-clock
  progress (infinite loop outside the simulator, chaos-injected hang) is
  SIGKILLed at ``wall_timeout`` seconds and the attempt classified
  ``timeout`` (transient: the same spec normally finishes in time);
* **simulated-cycle timeouts** — ``cycle_budget`` overlays ``max_steps``
  on every spec's GPU config, so the scheduler's own watchdog trips
  inside the worker and its :class:`~repro.gpu.errors.LivelockError` /
  :class:`~repro.gpu.errors.ProgressError` classification (spinning vs
  parked lanes) arrives as a structured, *deterministic* failure;
* **bounded retry with backoff** — transient failures (see
  :func:`~repro.harness.parallel.classify_exception`) are retried up to
  ``max_retries`` times with exponential backoff and deterministic
  jitter; deterministic failures (livelock, deadlock, verification
  errors) fail immediately, because replaying the same simulation
  replays the same outcome;
* **checkpoint/resume** — with a ``journal`` (a
  :class:`~repro.harness.journal.SweepJournal` or path), every finished
  job is durably recorded, and a re-run against the same journal skips
  completed jobs and merges to output bit-identical to an uninterrupted
  sweep;
* **chaos injection** — a :class:`ChaosPlan` makes workers misbehave on
  purpose (raise, SIGKILL themselves, hang, run with an armed fault
  plan) on chosen attempts, which is how the chaos harness proves the
  above actually works.

Everything the supervisor does is observable: it fills ``supervisor.*``
counters in a :class:`~repro.telemetry.MetricRegistry` (jobs total /
resumed / succeeded / failed, attempts, retries, first-attempt
successes, wall and cycle timeouts, failures by category) with the exact
arithmetic ``first_attempt_successes + retries + failures-after-retry``
accounting the acceptance tests pin down.

The supervisor never touches the unsupervised path: ``run_jobs`` without
supervision arguments does not import this module.
"""

import os
import signal
import time
import traceback

from repro.harness.journal import SweepJournal, spec_fingerprint
from repro.harness.parallel import (
    JobFailure,
    JobResult,
    TransientJobError,
    default_jobs,
    execute_job,
)
from repro.telemetry import MetricRegistry

#: chaos kinds that only make sense against a real worker process
_PROCESS_ONLY_CHAOS = ("sigkill", "hang")

CHAOS_KINDS = ("error", "sigkill", "hang", "fault")


class SupervisorConfig:
    """Tuning knobs for :func:`run_supervised`; plain picklable data.

    ``wall_timeout`` (seconds, process mode only) and ``cycle_budget``
    (simulated warp-steps, overlaid as ``max_steps`` on every spec)
    default to ``None`` — no limit.  ``max_retries`` bounds *re*-runs: a
    job gets at most ``1 + max_retries`` attempts, and only transient
    failures are retried.  Backoff before attempt ``n+1`` is
    ``backoff_base * 2**(n-1)`` seconds, capped at ``backoff_cap``, plus
    a deterministic jitter fraction (up to ``jitter`` of the delay)
    derived from the job fingerprint and attempt number — stable across
    runs, but de-synchronized across jobs.
    """

    __slots__ = (
        "wall_timeout",
        "cycle_budget",
        "max_retries",
        "backoff_base",
        "backoff_cap",
        "jitter",
        "poll_interval",
    )

    def __init__(self, wall_timeout=None, cycle_budget=None, max_retries=2,
                 backoff_base=0.25, backoff_cap=8.0, jitter=0.5,
                 poll_interval=0.05):
        self.wall_timeout = wall_timeout
        self.cycle_budget = cycle_budget
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.poll_interval = poll_interval

    def backoff_delay(self, fingerprint, attempts):
        """Delay before the next attempt, given ``attempts`` already made."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_base * (2.0 ** (attempts - 1)), self.backoff_cap)
        if self.jitter > 0:
            # deterministic jitter: hash of (fingerprint, attempt) — no
            # global RNG, so supervised sweeps stay reproducible
            seed = (int(fingerprint[:8], 16) ^ (attempts * 0x9E3779B1)) & 0xFFFFFFFF
            delay += delay * self.jitter * ((seed % 1024) / 1024.0)
        return delay

    def __repr__(self):
        return ("SupervisorConfig(wall_timeout=%r, cycle_budget=%r, "
                "max_retries=%d)" % (
                    self.wall_timeout, self.cycle_budget, self.max_retries))


class ChaosEvent:
    """One planned misbehaviour for a job: *what* goes wrong and *when*.

    ``kind`` is one of :data:`CHAOS_KINDS`; ``attempts`` the zero-based
    attempt numbers the event fires on (default: first attempt only), so
    a job can be made to fail exactly N times and then succeed.

    * ``error`` — raise :class:`TransientJobError` inside the worker;
    * ``sigkill`` — the worker SIGKILLs itself (supervisor sees a dead
      process with no result: ``worker-lost``);
    * ``hang`` — the worker sleeps ``hang_seconds`` (supervisor's wall
      timeout must reap it);
    * ``fault`` — the attempt runs with ``faults`` (``FaultSpec.parse``
      strings) armed and ``gpu_overrides`` applied (e.g. a tight
      ``max_steps``), then the attempt is *always* failed with a
      :class:`TransientJobError` describing what the injected fault did.
      The faulted attempt's result is discarded, so the clean retry keeps
      the sweep's merged output bit-identical.
    """

    __slots__ = ("kind", "attempts", "faults", "gpu_overrides", "hang_seconds")

    def __init__(self, kind, attempts=(0,), faults=None, gpu_overrides=None,
                 hang_seconds=3600.0):
        if kind not in CHAOS_KINDS:
            raise ValueError("unknown chaos kind %r (one of %s)"
                             % (kind, ", ".join(CHAOS_KINDS)))
        self.kind = kind
        self.attempts = tuple(attempts)
        self.faults = list(faults) if faults else None
        self.gpu_overrides = dict(gpu_overrides) if gpu_overrides else None
        self.hang_seconds = hang_seconds

    def fires_on(self, attempt):
        return attempt in self.attempts

    def __repr__(self):
        return "ChaosEvent(%r, attempts=%r)" % (self.kind, self.attempts)


class ChaosPlan:
    """Per-job chaos schedule, keyed by ``spec.key``.  Picklable: the plan
    ships into worker processes alongside the executor."""

    def __init__(self):
        self.events = {}

    def add(self, key, kind, **kwargs):
        self.events.setdefault(key, []).append(ChaosEvent(kind, **kwargs))
        return self

    def for_job(self, key, attempt):
        """The event firing for (job, attempt), or ``None``."""
        for event in self.events.get(key, ()):
            if event.fires_on(attempt):
                return event
        return None

    def needs_processes(self):
        """True when any event must run against a killable worker."""
        return any(
            event.kind in _PROCESS_ONLY_CHAOS
            for events in self.events.values()
            for event in events
        )

    def __len__(self):
        return sum(len(events) for events in self.events.values())

    def __repr__(self):
        return "ChaosPlan(%d events over %d jobs)" % (len(self), len(self.events))


def _apply_chaos(event, executor, spec, attempt):
    """Run one chaos event inside the worker.  Raises (or kills the
    process); for ``fault`` it runs the faulted attempt first so the
    injected failure is *real*, then fails the attempt as transient."""
    if event.kind == "error":
        raise TransientJobError(
            "chaos: injected error on attempt %d of %r" % (attempt, spec.key)
        )
    if event.kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    if event.kind == "hang":
        time.sleep(event.hang_seconds)
        raise TransientJobError(
            "chaos: hang of %r outlived its %.1fs nap (no wall timeout?)"
            % (spec.key, event.hang_seconds)
        )
    # kind == "fault": run with the fault plan armed, then discard
    if not hasattr(spec, "clone"):
        raise TransientJobError(
            "chaos: fault injection needs a JobSpec-like spec with clone(); "
            "%r has none" % (spec,)
        )
    updates = {}
    if event.faults:
        combined = list(spec.fault_plan or []) + list(event.faults)
        updates["fault_plan"] = combined
    if event.gpu_overrides:
        overrides = dict(spec.gpu_overrides or {})
        overrides.update(event.gpu_overrides)
        updates["gpu_overrides"] = overrides
    faulted = spec.clone(**updates)
    inner = executor(faulted)
    if getattr(inner, "failed", False):
        detail = inner.brief_error()
    else:
        detail = "run completed despite the fault"
    raise TransientJobError(
        "chaos: faulted attempt %d of %r (%s) -- %s"
        % (attempt, spec.key, ",".join(event.faults or []), detail)
    )


def _attempt_failure(spec, exc):
    key = getattr(spec, "key", None)
    tb = traceback.format_exc()
    return JobResult(
        key,
        error=tb,
        failure=JobFailure.from_exception(key, exc, tb=tb),
    )


def run_attempt(executor, spec, chaos, attempt):
    """One attempt of one job, chaos applied; returns a result, never
    raises.  Shared by the serial path and the worker-process entry."""
    try:
        if chaos is not None:
            event = chaos.for_job(getattr(spec, "key", None), attempt)
            if event is not None:
                _apply_chaos(event, executor, spec, attempt)
        return executor(spec)
    except Exception as exc:  # noqa: BLE001 - captured into the result
        return _attempt_failure(spec, exc)


def _worker_entry(conn, executor, spec, chaos, attempt):
    """Worker-process main: run the attempt, ship the result back."""
    result = run_attempt(executor, spec, chaos, attempt)
    try:
        conn.send(result)
    except Exception as exc:  # noqa: BLE001 - unpicklable result
        from repro.harness.parallel import _pool_error_result

        conn.send(_pool_error_result(spec, exc))
    finally:
        conn.close()


def _failure_of(result):
    """The structured failure of a result, or ``None`` on success.

    Custom executors may return bare payloads (tuples, fuzz outcomes)
    with no ``failed`` notion — those count as successes.
    """
    if isinstance(result, JobResult) and result.failed:
        if result.failure is not None:
            return result.failure
        return JobFailure(
            result.key, "error", "Error",
            result.brief_error() or "unknown failure",
            traceback=result.error,
        )
    return None


class _Job:
    """Supervisor-internal bookkeeping for one pending spec."""

    __slots__ = ("index", "spec", "fingerprint", "attempts", "not_before")

    def __init__(self, index, spec, fingerprint):
        self.index = index
        self.spec = spec
        self.fingerprint = fingerprint
        self.attempts = 0       # attempts already started
        self.not_before = 0.0   # monotonic time gate for backoff


class _Supervisor:
    """State shared by the serial and process execution modes."""

    def __init__(self, config, journal, chaos, executor, registry, sleep):
        self.config = config
        self.journal = journal
        self.chaos = chaos
        self.executor = executor
        self.registry = registry
        self.sleep = sleep
        self.results = None

    # -- counters ------------------------------------------------------
    def count(self, name, amount=1):
        self.registry.add("supervisor." + name, amount)

    def start_attempt(self, job):
        job.attempts += 1
        self.count("attempts")
        if job.attempts > 1:
            self.count("retries")

    # -- outcome handling ----------------------------------------------
    def finish(self, job, result, failure):
        """Record a job's final result (success or exhausted failure)."""
        if failure is None:
            self.count("jobs.succeeded")
            if job.attempts == 1:
                self.count("first_attempt_successes")
        else:
            failure.attempts = job.attempts
            self.count("jobs.failed")
            self.count("failures.%s" % failure.category)
            if failure.category in ("livelock", "deadlock"):
                self.count("timeouts.cycle")
        self.results[job.index] = result
        if self.journal is not None:
            self.journal.record(
                job.fingerprint, getattr(job.spec, "key", None), result
            )

    def should_retry(self, job, failure):
        return failure.transient and job.attempts <= self.config.max_retries

    def backoff(self, job):
        return self.config.backoff_delay(job.fingerprint, job.attempts)


def _run_serial(sup, pending):
    """In-process execution: retries loop inline, backoff via ``sleep``."""
    for job in pending:
        while True:
            sup.start_attempt(job)
            result = run_attempt(sup.executor, job.spec, sup.chaos,
                                 job.attempts - 1)
            failure = _failure_of(result)
            if failure is None or not sup.should_retry(job, failure):
                sup.finish(job, result, failure)
                break
            sup.sleep(sup.backoff(job))


def _launch(sup, job, ctx):
    """Start one worker process for the job's next attempt."""
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    sup.start_attempt(job)
    proc = ctx.Process(
        target=_worker_entry,
        args=(child_conn, sup.executor, job.spec, sup.chaos, job.attempts - 1),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    deadline = None
    if sup.config.wall_timeout is not None:
        deadline = time.monotonic() + sup.config.wall_timeout
    return {"job": job, "proc": proc, "conn": parent_conn, "deadline": deadline}


def _reap(sup, record, result, failure, queue):
    """Handle a finished attempt: retry (requeue with backoff) or finish."""
    job = record["job"]
    record["conn"].close()
    record["proc"].join()
    if failure is not None and sup.should_retry(job, failure):
        job.not_before = time.monotonic() + sup.backoff(job)
        queue.append(job)
    else:
        sup.finish(job, result, failure)


def _supervisor_timeout_result(job, category, detail):
    key = getattr(job.spec, "key", None)
    message = "job %r %s: %s" % (key, category, detail)
    failure = JobFailure(key, category, "SupervisorTimeout"
                         if category == "timeout" else "WorkerLost",
                         message, attempts=job.attempts, transient=True)
    return JobResult(key, error=message, failure=failure), failure


def _run_pool(sup, pending, workers):
    """Process-mode execution: one worker process per attempt, bounded
    concurrency, wall-clock deadlines, dead-worker detection."""
    import multiprocessing.connection as mpc
    import multiprocessing as mp

    ctx = mp.get_context()
    queue = list(pending)
    running = []

    while queue or running:
        now = time.monotonic()
        # launch every eligible job while worker slots are free
        launched = True
        while launched and len(running) < workers:
            launched = False
            for i, job in enumerate(queue):
                if job.not_before <= now:
                    del queue[i]
                    running.append(_launch(sup, job, ctx))
                    launched = True
                    break
        if not running:
            # everything queued is backing off; sleep to the nearest gate
            gate = min(job.not_before for job in queue)
            sup.sleep(max(0.0, gate - time.monotonic()))
            continue

        # wait for a result, a death, or the nearest deadline
        wait_until = now + sup.config.poll_interval
        for record in running:
            if record["deadline"] is not None:
                wait_until = min(wait_until, record["deadline"])
        for job in queue:
            wait_until = min(wait_until, job.not_before)
        mpc.wait(
            [record["conn"] for record in running],
            timeout=max(0.0, wait_until - time.monotonic()),
        )

        now = time.monotonic()
        still_running = []
        for record in running:
            job = record["job"]
            try:
                has_result = record["conn"].poll()
            except (OSError, ValueError):
                has_result = False
            if has_result:
                try:
                    result = record["conn"].recv()
                except (EOFError, OSError):
                    # died between poll() and recv(): treat as lost below
                    has_result = False
            if has_result:
                _reap(sup, record, result, _failure_of(result), queue)
                continue
            if record["deadline"] is not None and now >= record["deadline"]:
                record["proc"].kill()
                record["proc"].join()
                sup.count("timeouts.wall")
                result, failure = _supervisor_timeout_result(
                    job, "timeout",
                    "exceeded wall_timeout=%.1fs; worker SIGKILLed"
                    % sup.config.wall_timeout,
                )
                _reap(sup, record, result, failure, queue)
                continue
            if not record["proc"].is_alive():
                exitcode = record["proc"].exitcode
                result, failure = _supervisor_timeout_result(
                    job, "worker-lost",
                    "worker died without a result (exitcode %r)" % exitcode,
                )
                _reap(sup, record, result, failure, queue)
                continue
            still_running.append(record)
        running = still_running


def run_supervised(specs, jobs=None, config=None, journal=None, chaos=None,
                   executor=None, metrics=None, sleep=time.sleep,
                   recorder=None):
    """Execute ``specs`` under supervision; results in spec order.

    The entry point behind ``run_jobs(..., supervise=..., journal=...,
    chaos=...)``.  ``config`` is a :class:`SupervisorConfig` or a kwargs
    dict for one; ``journal`` a :class:`~repro.harness.journal.
    SweepJournal` or a path (a path-journal is closed on return);
    ``metrics`` a :class:`~repro.telemetry.MetricRegistry` receiving the
    ``supervisor.*`` counters (a throwaway registry is used when absent).
    ``sleep`` is injectable so tests assert backoff schedules without
    waiting them out.  ``recorder`` — a ``(specs, results, metrics)``
    callable, typically a :class:`~repro.expdb.recorder.SweepRecorder` —
    is invoked once at sweep completion with the *effective* specs (the
    cycle budget overlaid, i.e. exactly what was fingerprinted and
    journaled), so the experiment-DB record carries the same
    fingerprints a journal of this sweep checkpoints under.

    ``jobs <= 1`` runs attempts in-process (no wall timeouts, and chaos
    kinds that kill or hang the worker are rejected — they would take the
    caller down with them); ``jobs > 1`` runs each attempt in its own
    ``multiprocessing.Process`` so timeouts and chaos kills reap only
    that attempt.
    """
    specs = list(specs)
    if executor is None:
        executor = execute_job
    if config is None:
        config = SupervisorConfig()
    elif isinstance(config, dict):
        config = SupervisorConfig(**config)
    if jobs is None:
        jobs = default_jobs()
    registry = metrics if metrics is not None else MetricRegistry()

    own_journal = None
    if journal is not None and not isinstance(journal, SweepJournal):
        journal = own_journal = SweepJournal(journal)

    serial = jobs <= 1
    if serial and chaos is not None and chaos.needs_processes():
        raise ValueError(
            "chaos plan includes sigkill/hang events; they need worker "
            "processes (jobs > 1) or they would kill/hang this process"
        )

    # overlay the cycle budget *before* fingerprinting, so a journal
    # written under one budget is not resumed under another
    effective = []
    for spec in specs:
        if config.cycle_budget is not None and hasattr(spec, "clone"):
            overrides = dict(getattr(spec, "gpu_overrides", None) or {})
            overrides.setdefault("max_steps", config.cycle_budget)
            spec = spec.clone(gpu_overrides=overrides)
        effective.append(spec)

    fingerprints = [spec_fingerprint(spec) for spec in effective]
    completed = journal.load() if journal is not None else {}

    results = [None] * len(effective)
    pending = []
    for index, fingerprint in enumerate(fingerprints):
        if fingerprint in completed:
            results[index] = completed[fingerprint]
            registry.add("supervisor.jobs.resumed")
        else:
            pending.append(_Job(index, effective[index], fingerprint))
    registry.add("supervisor.jobs.total", len(effective))
    registry.add("supervisor.jobs.executed", len(pending))

    sup = _Supervisor(config, journal, chaos, executor, registry, sleep)
    sup.results = results
    try:
        if serial:
            _run_serial(sup, pending)
        elif pending:
            _run_pool(sup, pending, min(jobs, len(pending)))
    finally:
        if own_journal is not None:
            own_journal.close()
    if recorder is not None:
        recorder(effective, results, registry)
    return results
