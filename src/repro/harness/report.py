"""ASCII rendering of the reproduced tables and figures."""


def render_table(title, headers, rows, note=None):
    """Render a simple aligned text table; returns the string."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    out = [title, "=" * len(title), line(headers), line(["-" * w for w in widths])]
    for row in columns[1:]:
        out.append(line(row))
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def render_series(title, x_label, xs, series, fmt="%.2f"):
    """Render named series over a shared x axis as a table."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            if value is None:
                row.append("crash")
            elif isinstance(value, str):
                # pre-rendered cell (e.g. "FAILED" gaps from a supervised
                # sweep that exhausted retries)
                row.append(value)
            else:
                row.append(fmt % value)
        rows.append(row)
    return render_table(title, headers, rows)


def render_breakdown(title, phase_names, rows):
    """Render per-kernel phase fractions (Figure 5 style)."""
    headers = ["kernel"] + list(phase_names)
    table_rows = []
    for name, fractions in rows:
        table_rows.append(
            [name] + ["%5.1f%%" % (100.0 * fractions.get(p, 0.0)) for p in phase_names]
        )
    return render_table(title, headers, table_rows)


def percent(value):
    return "%.1f%%" % (100.0 * value)
