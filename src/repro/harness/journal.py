"""Sweep journal: checkpoint completed jobs so interrupted sweeps resume.

A sweep of hundreds of independent runs can die hours in — OOM killer,
pre-empted CI runner, an operator's ^C — and without a checkpoint every
completed job is lost with it.  The journal is the supervision layer's
durable record: one line per finished :class:`~repro.harness.parallel.
JobSpec`, written *as each job completes*, so a sweep resumed against the
same journal re-runs only the jobs that never finished and merges to
output bit-identical to an uninterrupted run.

Format
======
Append-only JSON Lines.  The first line is a header::

    {"kind": "header", "version": 1}

and every completed job appends::

    {"kind": "job", "fingerprint": "<sha256>", "key": "<repr>",
     "payload": "<base64 pickle of the result object>"}

The payload is pickled (not JSON) because results carry rich objects —
``RunResult`` with kernel results and stats, per-worker metric
registries — whose round-trip must be exact for the resumed sweep to be
bit-identical.  The ``key`` repr rides along purely for human inspection
of the journal.

Crash consistency comes from the append-only discipline rather than from
temp-file swaps: each record is a single line, flushed and ``fsync``\\ ed
before the supervisor moves on, and :meth:`SweepJournal.load` tolerates a
truncated or garbled final line (the job it described simply re-runs).
A journal can therefore never poison a resume — the worst a crash can do
is lose the one job that was mid-append.

Fingerprints
============
:func:`spec_fingerprint` hashes the spec's complete picklable state
(canonical JSON, sorted keys), so a journal entry is only reused when
*every* field of the spec — workload, params, variant, overrides, fault
plan, telemetry settings — is identical.  Changing the sweep invalidates
exactly the entries whose specs changed.
"""

import base64
import hashlib
import json
import os
import pickle

JOURNAL_VERSION = 1


def _spec_state(spec):
    """The spec's plain-data state, however the spec class spells it."""
    getstate = getattr(spec, "__getstate__", None)
    if getstate is not None:
        return getstate()
    slots = getattr(type(spec), "__slots__", None)
    if slots is not None:
        return {slot: getattr(spec, slot) for slot in slots}
    return dict(vars(spec))


def spec_fingerprint(spec):
    """Deterministic content hash of a job spec (hex sha256).

    Works for any spec object exposing ``__getstate__`` or ``__slots__``
    (:class:`~repro.harness.parallel.JobSpec`, the fault campaign's
    ``CampaignJob``, the fuzzer's seeds).  Values that are not JSON types
    fall back to ``repr``, which is stable for the plain-data specs the
    harness uses.
    """
    state = _spec_state(spec)
    canonical = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SweepJournal:
    """Append-only checkpoint file mapping spec fingerprints to results.

    ``load()`` once up front to learn what already completed; ``record()``
    after every finished job.  The journal holds the file open in append
    mode between records; ``close()`` (or use as a context manager) when
    the sweep ends.
    """

    def __init__(self, path):
        self.path = path
        self._handle = None
        #: entries whose lines failed to parse on load (truncated tail of a
        #: killed run, hand-edited files); surfaced so callers can report
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self):
        """Return ``{fingerprint: result}`` for every readable record.

        Missing file means a fresh sweep (empty dict).  A torn final line
        — the signature of a process killed mid-append — is skipped, as is
        any record whose payload fails to unpickle; those jobs re-run.
        """
        completed = {}
        self.skipped_lines = 0
        if not os.path.exists(self.path):
            return completed
        with open(self.path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                kind = record.get("kind")
                if kind == "header":
                    version = record.get("version")
                    if version != JOURNAL_VERSION:
                        raise ValueError(
                            "journal %s has version %r; this build reads %d"
                            % (self.path, version, JOURNAL_VERSION)
                        )
                    continue
                if kind != "job":
                    self.skipped_lines += 1
                    continue
                try:
                    payload = base64.b64decode(record["payload"])
                    completed[record["fingerprint"]] = pickle.loads(payload)
                except Exception:  # noqa: BLE001 - any torn record re-runs
                    self.skipped_lines += 1
        return completed

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _open_for_append(self):
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            fresh = not os.path.exists(self.path)
            self._handle = open(self.path, "a")
            if fresh:
                self._append({"kind": "header", "version": JOURNAL_VERSION})
        return self._handle

    def _append(self, record):
        handle = self._handle
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def record(self, fingerprint, key, result):
        """Durably append one completed job before the sweep moves on."""
        self._open_for_append()
        self._append({
            "kind": "job",
            "fingerprint": fingerprint,
            "key": repr(key),
            "payload": base64.b64encode(pickle.dumps(result)).decode("ascii"),
        })

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "SweepJournal(%r)" % (self.path,)
