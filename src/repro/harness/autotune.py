"""Concurrency autotuning: the paper's proposed transaction scheduler.

Section 4.2: "the increasing number of threads can result in more conflicts
among transactions thus higher abort rates.  This is a tradeoff between
concurrency and efficiency, and this tradeoff encourages identifying the
optimal number of concurrent threads.  Therefore, a transaction scheduler
that dynamically adjusts concurrency would simplify the optimization of
GPU-STM programs.  We leave this adaptive transactional scheduler as our
future work."

This module prototypes that scheduler as an offline autotuner: it runs a
workload at a ladder of launch geometries (total work held constant), walks
up while performance improves, and stops as soon as added concurrency costs
more in aborts than it buys in parallelism — returning the chosen geometry
and the evidence trail.
"""

from repro.harness.runner import run_workload


class TuneStep:
    """One probed geometry and what it measured."""

    __slots__ = ("grid", "block", "cycles", "abort_rate")

    def __init__(self, grid, block, cycles, abort_rate):
        self.grid = grid
        self.block = block
        self.cycles = cycles
        self.abort_rate = abort_rate

    @property
    def threads(self):
        return self.grid * self.block

    def __repr__(self):
        return "TuneStep(%dx%d: %d cycles, %.0f%% aborts)" % (
            self.grid,
            self.block,
            self.cycles,
            100 * self.abort_rate,
        )


class TuneResult:
    """Outcome of one autotuning session."""

    def __init__(self, steps, best):
        self.steps = steps
        self.best = best

    def __repr__(self):
        return "TuneResult(best=%r, probed=%d)" % (self.best, len(self.steps))


def tune_concurrency(
    workload_factory,
    variant,
    gpu_config,
    geometries,
    num_locks=1024,
    stm_overrides=None,
    patience=1,
):
    """Find the launch geometry where ``variant`` performs best.

    ``workload_factory(grid, block)`` builds a fresh workload instance with
    the *same total transactional work* at the given geometry.
    ``geometries`` is an ascending ladder of (grid, block) pairs.  The
    tuner climbs while cycles improve and stops after ``patience``
    consecutive regressions — the concurrency/efficiency tradeoff point.
    Returns a :class:`TuneResult`.
    """
    if not geometries:
        raise ValueError("geometries must be non-empty")
    steps = []
    best = None
    regressions = 0
    for grid, block in geometries:
        workload = workload_factory(grid, block)
        run = run_workload(
            workload,
            variant,
            gpu_config,
            num_locks=num_locks,
            stm_overrides=stm_overrides,
        )
        step = TuneStep(grid, block, run.cycles, run.abort_rate)
        steps.append(step)
        if best is None or step.cycles < best.cycles:
            best = step
            regressions = 0
        else:
            regressions += 1
            if regressions > patience:
                break
    return TuneResult(steps, best)
